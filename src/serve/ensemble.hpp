// opv::serve::Ensemble: a batch scheduler that owns N simulation instances
// and multiplexes their timesteps across one shared worker pool.
//
// The ROADMAP's ensemble-serving item: Volna's production use case is
// probabilistic hazard assessment — hundreds of scenario instances of one
// (often small) mesh, where no single instance can fill the machine but
// the ensemble can. Each instance is a user-built simulation (typically a
// LocalCtx plus pinned Loop/LoopChain handles, constructed by the caller's
// InstanceFactory) exposing exactly one operation: step(). The scheduler
// interleaves instances over a WorkQueue (common/worker_pool.hpp) so
// small-mesh steps batch together, while two invariants hold:
//
//   * Per-instance step ordering. An instance id is owned exclusively
//     between acquire() and release(); its steps execute strictly in
//     order (possibly on different workers across batches — the queue
//     mutex sequences the handoff), so results on the Seq backend are
//     bitwise-identical to running the instance alone.
//   * Fault isolation. An exception thrown by one instance's step()
//     retires that instance (error captured in the report) and never
//     propagates to siblings or the pool.
//
// What makes N-in-one-process better than N processes is the shared
// runtime state: instances built from the same mesh produce identical
// content keys in the PlanCache, so N instances pay for ONE coloring-plan
// build (the cache is single-flight — concurrent first-steps block on one
// build instead of racing). Per-instance stats stay separable through
// StatsScope: each instance's steps run under scope "<ensemble>/i<NNN>",
// so its loops bind scoped registry rows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/worker_pool.hpp"
#include "core/loop_stats.hpp"

namespace opv::serve {

/// One simulation instance: anything that can advance by one timestep.
/// Implementations own their full simulation state (context, mesh data,
/// pinned loop handles). step() is called with exclusive ownership — never
/// concurrently for one instance — but different instances step
/// concurrently, so anything shared BETWEEN instances must be immutable or
/// thread-safe (a shared input mesh read at construction is fine).
class Instance {
 public:
  virtual ~Instance() = default;

  /// Advance the simulation by one timestep. Throwing retires this
  /// instance from the ensemble (captured in the report); siblings
  /// continue.
  virtual void step() = 0;
};

/// Builds instance `id` (0-based). Called once per instance at
/// add_instances() time, on the caller's thread, under the instance's
/// stats scope (so loops that record during construction already land in
/// scoped rows).
using InstanceFactory = std::function<std::unique_ptr<Instance>(int id)>;

struct EnsembleOptions {
  std::string name = "ensemble";  ///< stats-registry key + scope prefix
  int workers = 0;                ///< pool size; 0 = hardware_threads()
  int batch_steps = 1;            ///< steps per queue grab (interleave grain)
  bool collect_stats = true;      ///< record an EnsembleRecord per run()
  bool scope_stats = true;        ///< per-instance StatsScope around steps
};

/// Per-instance outcome of one Ensemble::run().
struct InstanceReport {
  int id = -1;
  std::string scope;            ///< "<ensemble>/i<NNN>"
  std::int64_t steps_done = 0;  ///< steps executed in this run
  double seconds = 0.0;         ///< wall time spent stepping this instance
  std::string error;            ///< non-empty once the instance failed
  [[nodiscard]] bool failed() const { return !error.empty(); }
};

/// Aggregate outcome of one Ensemble::run().
struct EnsembleReport {
  double seconds = 0.0;          ///< run() wall time
  int workers = 0;               ///< pool size
  std::int64_t steps = 0;        ///< instance timesteps executed
  std::int64_t completed = 0;    ///< instances that finished all steps
  std::int64_t failed = 0;       ///< instances retired by an exception
  double busy_seconds = 0.0;     ///< summed per-worker stepping time
  std::int64_t plan_hits = 0;    ///< PlanCache hits during the run
  std::int64_t plan_misses = 0;  ///< PlanCache builds during the run
  std::vector<InstanceReport> instances;

  /// Completed instances per wall second — the bench headline.
  [[nodiscard]] double instances_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  }
  /// Fraction of the pool's wall capacity spent stepping (1.0 = every
  /// worker busy for the whole run; low values mean the queue starved).
  [[nodiscard]] double occupancy() const {
    return seconds > 0.0 && workers > 0 ? busy_seconds / (seconds * workers) : 0.0;
  }
  /// Plan-cache hit fraction across the run (0 when no plan traffic).
  [[nodiscard]] double plan_hit_rate() const {
    const auto total = plan_hits + plan_misses;
    return total > 0 ? static_cast<double>(plan_hits) / static_cast<double>(total) : 0.0;
  }
};

/// The scheduler. Owns its instances and one WorkerPool; run(steps)
/// advances every live instance by `steps` timesteps, multiplexed over the
/// pool, and reports throughput + shared-resource statistics. run() may be
/// called repeatedly (e.g. stepping an ensemble in windows with host-side
/// output between); failed instances stay retired.
class Ensemble {
 public:
  explicit Ensemble(EnsembleOptions opts = {});
  ~Ensemble();
  Ensemble(const Ensemble&) = delete;
  Ensemble& operator=(const Ensemble&) = delete;

  /// Build and adopt one instance; returns its id.
  int add_instance(const InstanceFactory& factory);

  /// Build and adopt `n` instances (factory sees ids size()..size()+n-1).
  void add_instances(int n, const InstanceFactory& factory);

  [[nodiscard]] int size() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] int workers() const { return pool_.size(); }
  [[nodiscard]] const std::string& name() const { return opts_.name; }

  /// The instance's stats scope, "<ensemble>/i<NNN>" — the prefix its loop
  /// rows carry in StatsRegistry when scope_stats is on.
  [[nodiscard]] std::string scope_of(int id) const;

  /// Access an adopted instance (e.g. to fetch results after run()).
  [[nodiscard]] Instance& instance(int id);
  [[nodiscard]] const Instance& instance(int id) const;

  /// The error that retired instance `id` ("" while healthy).
  [[nodiscard]] const std::string& error_of(int id) const;

  /// Advance every live instance by `steps` timesteps over the shared
  /// pool. Blocks until all instances complete or fail.
  EnsembleReport run(std::int64_t steps);

 private:
  struct Slot {
    std::unique_ptr<Instance> inst;
    std::int64_t remaining = 0;  ///< steps left in the current run
    std::string error;           ///< retired-by-exception marker
  };

  EnsembleOptions opts_;
  WorkerPool pool_;
  std::vector<Slot> slots_;
  EnsembleRecord* stats_ = nullptr;  ///< bound on first recording run
};

}  // namespace opv::serve
