// Shared worker-pool primitives. Two layers:
//
//   WorkerPool  a persistent gang: run(f) executes f(rank) on every worker
//               concurrently and blocks until all finish. Originally the
//               dist rank simulator's engine (dist/context.hpp); promoted
//               here so the serve/ ensemble scheduler and dist/ share one
//               implementation.
//   WorkQueue   a submission layer over the gang for task-farm scheduling:
//               producers push integer work ids, gang workers acquire()
//               exclusive ownership of one id at a time and release() it
//               (optionally re-enqueueing). acquire() returns nullopt only
//               when the queue is drained AND nothing is in flight — an
//               in-flight item may still requeue, so idle workers park on
//               the condition variable instead of spinning or exiting
//               early.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace opv {

/// Runs f(rank) for every rank concurrently and blocks until all finish.
/// The rank threads are persistent (one per rank for the pool's lifetime),
/// so repeated run() calls — one per parallel loop in a timestep-driven
/// application — pay a condition-variable wakeup, not a thread spawn. The
/// first exception thrown by any rank is rethrown in the caller.
class WorkerPool {
 public:
  explicit WorkerPool(int nranks) {
    OPV_REQUIRE(nranks >= 1, "WorkerPool: need at least one rank");
    state_.nranks = nranks;
    threads_.reserve(nranks);
    for (int r = 0; r < nranks; ++r) threads_.emplace_back([this, r] { worker(r); });
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(state_.mu);
      state_.stop = true;
    }
    state_.start_cv.notify_all();
    for (auto& t : threads_) t.join();
  }

  template <class F>
  void run(F&& f) {
    const std::function<void(int)> job(std::forward<F>(f));
    State& s = state_;
    std::unique_lock<std::mutex> lock(s.mu);
    s.job = &job;
    s.pending = s.nranks;
    ++s.generation;
    s.start_cv.notify_all();
    s.done_cv.wait(lock, [&] { return s.pending == 0; });
    s.job = nullptr;
    if (s.error) {
      const std::exception_ptr e = s.error;
      s.error = nullptr;
      std::rethrow_exception(e);
    }
  }

  [[nodiscard]] int size() const { return state_.nranks; }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable start_cv, done_cv;
    const std::function<void(int)>* job = nullptr;
    std::uint64_t generation = 0;
    int pending = 0;
    int nranks = 0;
    bool stop = false;
    std::exception_ptr error;
  };

  void worker(int r) {
    State& s = state_;
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(s.mu);
        s.start_cv.wait(lock, [&] { return s.stop || s.generation != seen; });
        if (s.stop) return;
        seen = s.generation;
        job = s.job;
      }
      try {
        (*job)(r);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.error) s.error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(s.mu);
        if (--s.pending == 0) s.done_cv.notify_all();
      }
    }
  }

  State state_;
  std::vector<std::thread> threads_;
};

/// A blocking multi-producer multi-consumer queue of integer work ids, the
/// submission layer the ensemble scheduler (serve/ensemble.hpp) drives over
/// a WorkerPool gang. Ownership is exclusive: an id handed out by acquire()
/// cannot be acquired again until release()d, which is what lets each item
/// carry non-thread-safe state (a simulation instance) while many workers
/// drain the queue.
///
/// Termination: acquire() blocks while the queue is empty but work is still
/// in flight (the owner may requeue it) and returns nullopt once the queue
/// is empty with nothing in flight, or after close(). Workers therefore
/// loop `while (auto id = q.acquire()) { ...; q.release(*id, more); }` and
/// all exit exactly when no item can ever appear again.
///
/// Two priority levels: requeue_front()/release(..., front=true) place an id
/// in the urgent lane, drained ahead of the normal FIFO — the resilience
/// scheduler uses it so a retried instance re-enters ahead of fresh work and
/// its recovery latency stays bounded. An aging rule prevents starvation:
/// after `priority_burst` consecutive urgent grabs, one normal-lane id is
/// served even if urgent work is still pending.
class WorkQueue {
 public:
  /// priority_burst: consecutive urgent-lane grabs allowed before one
  /// normal-lane id is served (anti-starvation aging; must be >= 1).
  explicit WorkQueue(int priority_burst = 4) : burst_(priority_burst) {
    OPV_REQUIRE(burst_ >= 1, "WorkQueue: priority_burst must be >= 1");
  }

  /// Enqueue an id (FIFO). Safe from any thread, including an owner
  /// re-submitting a different id.
  void push(int id) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      q_.push_back(id);
    }
    cv_.notify_one();
  }

  /// Enqueue an id into the urgent lane, served ahead of normal pushes
  /// (subject to the anti-starvation burst limit).
  void requeue_front(int id) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pri_.push_back(id);
    }
    cv_.notify_one();
  }

  /// Block until an id is available (acquiring exclusive ownership), or
  /// until the queue can never yield one again (drained with nothing in
  /// flight, or closed) — then nullopt.
  [[nodiscard]] std::optional<int> acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !pri_.empty() || !q_.empty() || inflight_ == 0; });
    if (pri_.empty() && q_.empty()) return std::nullopt;  // closed or fully drained
    const bool take_pri = !pri_.empty() && (q_.empty() || pri_streak_ < burst_);
    std::deque<int>& lane = take_pri ? pri_ : q_;
    pri_streak_ = take_pri ? pri_streak_ + 1 : 0;
    const int id = lane.front();
    lane.pop_front();
    ++inflight_;
    return id;
  }

  /// Give up ownership of an acquired id; requeue=true re-enqueues it for
  /// another acquire() (possibly by a different worker), in the urgent lane
  /// when front=true.
  void release(int id, bool requeue, bool front = false) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (requeue && !closed_) (front ? pri_ : q_).push_back(id);
    }
    // Wake everyone: a requeue frees one item, but a drain (inflight
    // reaching 0 with an empty queue) must release ALL parked workers.
    cv_.notify_all();
  }

  /// Drop pending ids and wake every parked worker; subsequent acquire()
  /// calls return nullopt once in-flight items release.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      q_.clear();
      pri_.clear();
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size() + pri_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<int> q_;    ///< normal lane (fresh work)
  std::deque<int> pri_;  ///< urgent lane (retries / deadline-ish work)
  int inflight_ = 0;
  int burst_ = 4;
  int pri_streak_ = 0;  ///< consecutive urgent grabs since a normal one
  bool closed_ = false;
};

}  // namespace opv
