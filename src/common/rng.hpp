// Small deterministic RNG (splitmix64 + xoshiro256**) used by synthetic mesh
// perturbation, randomized tests and workload generators. Deterministic
// across platforms, unlike std::mt19937 distributions.
#pragma once

#include <cstdint>

namespace opv {

/// splitmix64: used to seed xoshiro and as a cheap standalone hash.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    for (auto& w : s_) w = splitmix64(seed);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace opv
