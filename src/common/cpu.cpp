#include "common/cpu.hpp"

#include <sstream>
#include <thread>

namespace opv {

CpuFeatures detect_cpu_features() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.sse42 = __builtin_cpu_supports("sse4.2");
  f.avx = __builtin_cpu_supports("avx");
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
#endif
  return f;
}

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::string cpu_summary() {
  const CpuFeatures f = detect_cpu_features();
  std::ostringstream os;
  os << hardware_threads() << " hardware threads; ISA:";
  if (f.sse42) os << " SSE4.2";
  if (f.avx) os << " AVX";
  if (f.avx2) os << " AVX2";
  if (f.fma) os << " FMA";
  if (f.avx512f) os << " AVX-512F";
  os << "; DP lanes " << f.max_double_lanes() << ", SP lanes " << f.max_float_lanes();
  return os.str();
}

}  // namespace opv
