// Runtime CPU feature detection and a machine description used by the
// Table I reproduction and by the SIMD dispatch diagnostics.
#pragma once

#include <string>

namespace opv {

/// Instruction-set features detected at runtime (via __builtin_cpu_supports).
struct CpuFeatures {
  bool sse42 = false;
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;

  /// Widest double-precision vector width usable on this machine (lanes).
  [[nodiscard]] int max_double_lanes() const { return avx512f ? 8 : (avx ? 4 : 2); }
  /// Widest single-precision vector width usable on this machine (lanes).
  [[nodiscard]] int max_float_lanes() const { return avx512f ? 16 : (avx ? 8 : 4); }
};

/// Detect the features of the executing CPU.
CpuFeatures detect_cpu_features();

/// Hardware threads available to this process.
int hardware_threads();

/// One-line human-readable summary ("24 threads, AVX2+FMA+AVX-512F").
std::string cpu_summary();

}  // namespace opv
