#include "common/stats.hpp"

#include <array>
#include <cstdio>

namespace opv {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> units = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string format_seconds(double s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f us", s * 1e6);
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  const std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace opv
