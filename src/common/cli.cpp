#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace opv {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    OPV_REQUIRE(a.rfind("--", 0) == 0, "option '" << a << "' must start with --");
    a.erase(0, 2);
    const auto eq = a.find('=');
    if (eq == std::string::npos) {
      opts_[a] = "";
    } else {
      opts_[a.substr(0, eq)] = a.substr(eq + 1);
    }
  }
}

bool Cli::has(const std::string& name) const { return opts_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  const auto it = opts_.find(name);
  return it == opts_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& name, long fallback) const {
  const auto it = opts_.find(name);
  if (it == opts_.end()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = opts_.find(name);
  if (it == opts_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string> Cli::unknown(const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : opts_) {
    bool found = false;
    for (const auto& k2 : known)
      if (k == k2) {
        found = true;
        break;
      }
    if (!found) out.push_back(k);
  }
  return out;
}

}  // namespace opv
