// Cache-line / vector-register aligned storage. All opvec datasets live in
// 64-byte-aligned buffers so that the SIMD backend can use aligned loads on
// the main sweep after the scalar pre-sweep (paper section 4.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace opv {

/// Alignment used for all data buffers: one cache line, which also satisfies
/// the strictest vector-register alignment (64 B for 512-bit vectors).
inline constexpr std::size_t kDataAlignment = 64;

/// Minimal C++17 aligned allocator so aligned_vector is a drop-in
/// std::vector with 64-byte-aligned storage.
template <class T, std::size_t Align = kDataAlignment>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t alignment{Align};

  // Required explicitly: allocator_traits cannot synthesize rebind for an
  // allocator with a non-type template parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(::operator new(n * sizeof(T), alignment));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, alignment); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// True if p is aligned to the given byte boundary.
inline bool is_aligned(const void* p, std::size_t align = kDataAlignment) {
  return (reinterpret_cast<std::uintptr_t>(p) % align) == 0;
}

}  // namespace opv
