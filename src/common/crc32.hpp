// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// integrity check of the OPVK checkpoint container (mesh/io). Table-driven,
// byte-at-a-time: checkpoint sections are a few MB at most, so simplicity
// beats a slicing-by-8 implementation here.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace opv {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of `n` bytes. Chainable: pass a previous result as `seed` to
/// checksum a buffer in pieces (crc32(b, nb, crc32(a, na)) == crc32(ab)).
inline std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace opv
