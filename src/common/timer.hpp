// Wall-clock timing utilities used by the per-loop performance accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace opv {

/// Monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time and invocation counts for one named region.
struct TimeAccum {
  double seconds = 0.0;
  std::int64_t calls = 0;

  void add(double s) {
    seconds += s;
    ++calls;
  }
  void merge(const TimeAccum& o) {
    seconds += o.seconds;
    calls += o.calls;
  }
  void clear() { *this = TimeAccum{}; }
};

}  // namespace opv
