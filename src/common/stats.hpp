// Summary statistics and human-readable formatting helpers shared by the
// performance accounting layer, benches and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace opv {

/// Running min/max/mean/stddev over a stream of samples (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Format a byte count as a human-readable string ("373.2 MB").
std::string format_bytes(std::uint64_t bytes);

/// Format seconds with sensible precision ("12.34 s", "1.2 ms").
std::string format_seconds(double s);

/// Format a count with thousands separators ("2,880,000").
std::string format_count(std::uint64_t n);

}  // namespace opv
