// Error handling helpers: checked preconditions that throw with location info
// (used on API boundaries) and debug-only assertions (used on hot paths).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace opv {

/// Exception type thrown by all opvec precondition failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << "opvec error: " << msg << " [" << cond << " failed at " << file << ":" << line << "]";
  throw Error(os.str());
}
}  // namespace detail

}  // namespace opv

/// Always-on precondition check; throws opv::Error on failure.
#define OPV_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream opv_os_;                                           \
      opv_os_ << msg;                                                       \
      ::opv::detail::throw_error(#cond, __FILE__, __LINE__, opv_os_.str()); \
    }                                                                       \
  } while (0)

/// Debug-only invariant check on hot paths; compiled out in release builds.
#ifndef NDEBUG
#define OPV_ASSERT(cond, msg) OPV_REQUIRE(cond, msg)
#else
#define OPV_ASSERT(cond, msg) ((void)0)
#endif
