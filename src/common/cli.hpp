// Minimal command-line option parser for the bench and example binaries.
// Supports "--name=value" and "--flag" forms; unknown options are reported.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace opv {

/// Parses "--key=value" / "--flag" style argument lists.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// True if --name was given (with or without value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name=value, or fallback if absent.
  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Options that were parsed but never queried (typo detection for benches).
  [[nodiscard]] std::vector<std::string> unknown(const std::vector<std::string>& known) const;

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> opts_;
};

}  // namespace opv
