// Halo-exchange transport seam for the distributed layer.
//
// The paper's MPI results (section 6.5) hinge on making halo exchange cheap
// and overlappable; the first step is separating WHAT a loop exchanges from
// HOW the bytes move. A dist::Loop pins an ExchangePlan at construction
// (which dats it reads stale, which it dirties); all traffic then flows
// through the context's Exchanger. The in-tree transport is MemcpyExchanger
// (every rank replica lives in one address space, so halo slots are filled
// by direct memcpy from the owner); a real MPI transport implements the same
// two-method interface and drops in via DistCtx::set_exchanger without
// touching the loop API.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "dist/halo.hpp"

namespace opv::dist {

/// Type-erased per-rank storage view of one dataset: everything a transport
/// needs to move halo values without knowing the value type. The rank base
/// pointers are pinned when the dataset is materialized (rank replicas are
/// never reallocated after finalize()).
struct DatHaloView {
  int dat = -1;                ///< dat id (diagnostics)
  int set = -1;                ///< set the dat lives on (selects layouts)
  int dim = 0;                 ///< values per element
  std::size_t value_bytes = 0; ///< sizeof one scalar value
  std::vector<unsigned char*> rank_base;  ///< per-rank replica base pointer
};

/// A loop's pinned halo-exchange schedule, derived once at dist::Loop
/// construction from the argument types (compile-time access modes) and the
/// runtime dat identities:
///   * read_dats — datasets the loop consumes halo values of (indirect
///     reads always; direct reads/increments too when the loop redundantly
///     executes the import halo), refreshed before the run if dirty;
///   * write_dats — datasets the loop modifies, whose halo copies are
///     invalidated after the run.
struct ExchangePlan {
  std::vector<int> read_dats;
  std::vector<int> write_dats;
};

/// Transport interface: refresh every halo slot of one dataset from its
/// owning rank. Implementations are exchange mechanisms only — the dirty
/// tracking and the decision of WHICH dats to refresh stay with the context
/// and the loop's ExchangePlan.
class Exchanger {
 public:
  virtual ~Exchanger() = default;

  /// Fill halo slots [nowned, ntotal) of `view`'s dat on every rank from the
  /// owner replica; returns the number of scalar values copied.
  virtual std::int64_t exchange(const Partitioned& part, const DatHaloView& view) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

/// The in-process transport: all rank replicas share one address space, so a
/// halo slot is refreshed with a single memcpy from the owner's storage.
class MemcpyExchanger final : public Exchanger {
 public:
  std::int64_t exchange(const Partitioned& part, const DatHaloView& view) override {
    const std::size_t stride = view.value_bytes * static_cast<std::size_t>(view.dim);
    std::int64_t copied = 0;
    for (int r = 0; r < part.nranks(); ++r) {
      const LocalLayout& L = part.layout(r, view.set);
      unsigned char* dst = view.rank_base[static_cast<std::size_t>(r)];
      const idx_t nhalo = L.ntotal - L.nowned;
      for (idx_t i = 0; i < nhalo; ++i) {
        const unsigned char* src =
            view.rank_base[static_cast<std::size_t>(L.src_rank[i])] +
            static_cast<std::size_t>(L.src_local[i]) * stride;
        std::memcpy(dst + static_cast<std::size_t>(L.nowned + i) * stride, src, stride);
        copied += view.dim;
      }
    }
    return copied;
  }

  [[nodiscard]] const char* name() const override { return "memcpy"; }
};

}  // namespace opv::dist
