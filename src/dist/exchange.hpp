// Halo-exchange transport seam for the distributed layer.
//
// The paper's MPI results (section 6.5) hinge on making halo exchange cheap
// and overlappable; the first step is separating WHAT a loop exchanges from
// HOW the bytes move, the second is splitting WHEN: a dist::Loop pins an
// ExchangePlan at construction (which dats it reads stale, which it
// dirties, and the per-rank interior/boundary element classification), and
// all traffic flows through the context's Exchanger as a non-blocking
// begin()/wait() pair so interior compute can run while the bytes move.
// Blocking-only transports implement exchange() alone and inherit the
// default adapter (begin = no-op, wait = exchange). In-tree transports:
//   * MemcpyExchanger — every rank replica lives in one address space, so a
//     halo slot is refreshed by direct memcpy from the owner;
//   * StagedExchanger — packs per-neighbor send buffers at begin() and
//     unpacks them into halo slots at wait(), the two-sided staging shape a
//     real MPI transport (Isend/Irecv + Wait) needs; optionally does the
//     copy on a background thread so the overlap is real.
// A real MPI transport implements the same interface and drops in via
// DistCtx::set_exchanger without touching the loop API.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <future>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "core/layout.hpp"
#include "dist/halo.hpp"

namespace opv::dist {

/// Type-erased per-rank storage view of one dataset: everything a transport
/// needs to move halo values without knowing the value type. The rank base
/// pointers are pinned when the dataset is materialized (rank replicas are
/// never reallocated after finalize()).
///
/// Rank replicas inherit the dat's layout policy (core/layout.hpp), so an
/// element's dim values are contiguous only under AoS; the layout plus the
/// per-rank plane stride let transports address individual components of
/// any physical layout.
struct DatHaloView {
  int dat = -1;                ///< dat id (diagnostics)
  int set = -1;                ///< set the dat lives on (selects layouts)
  int dim = 0;                 ///< values per element
  std::size_t value_bytes = 0; ///< sizeof one scalar value
  Layout layout = Layout::AoS; ///< physical layout of every rank replica
  std::vector<unsigned char*> rank_base;  ///< per-rank replica base pointer
  std::vector<idx_t> rank_plane;          ///< per-rank SoA/AoSoA plane stride
};

/// Address of value c of local element e in rank r's replica.
inline unsigned char* halo_value_ptr(const DatHaloView& v, int r, idx_t e, int c) {
  return v.rank_base[static_cast<std::size_t>(r)] +
         layout_offset(v.layout, e, c, v.dim,
                       v.rank_plane.empty() ? 0 : v.rank_plane[static_cast<std::size_t>(r)]) *
             v.value_bytes;
}

/// Copy one element's dim values between rank replicas: a single contiguous
/// memcpy under AoS, per-component copies otherwise (the components of one
/// element are plane-strided apart).
inline void halo_copy_row(const DatHaloView& v, int dst_rank, idx_t dst_e, int src_rank,
                          idx_t src_e) {
  if (v.layout == Layout::AoS) {
    std::memcpy(halo_value_ptr(v, dst_rank, dst_e, 0), halo_value_ptr(v, src_rank, src_e, 0),
                v.value_bytes * static_cast<std::size_t>(v.dim));
    return;
  }
  for (int c = 0; c < v.dim; ++c)
    std::memcpy(halo_value_ptr(v, dst_rank, dst_e, c), halo_value_ptr(v, src_rank, src_e, c),
                v.value_bytes);
}

/// Pack one element's dim values into a contiguous (AoS-order) message slot —
/// the wire format stays layout-independent, so a receiving transport never
/// needs to know the sender's physical layout.
inline void halo_pack_row(const DatHaloView& v, int r, idx_t e, unsigned char* buf) {
  if (v.layout == Layout::AoS) {
    std::memcpy(buf, halo_value_ptr(v, r, e, 0), v.value_bytes * static_cast<std::size_t>(v.dim));
    return;
  }
  for (int c = 0; c < v.dim; ++c)
    std::memcpy(buf + static_cast<std::size_t>(c) * v.value_bytes, halo_value_ptr(v, r, e, c),
                v.value_bytes);
}

/// Unpack a contiguous message slot into one element of rank r's replica.
inline void halo_unpack_row(const DatHaloView& v, int r, idx_t e, const unsigned char* buf) {
  if (v.layout == Layout::AoS) {
    std::memcpy(halo_value_ptr(v, r, e, 0), buf, v.value_bytes * static_cast<std::size_t>(v.dim));
    return;
  }
  for (int c = 0; c < v.dim; ++c)
    std::memcpy(halo_value_ptr(v, r, e, c), buf + static_cast<std::size_t>(c) * v.value_bytes,
                v.value_bytes);
}

/// One rank's pinned interior/boundary classification (paper section 6.5):
/// interior elements touch no halo slot through any indirect argument of
/// the loop and may execute while an exchange is in flight; boundary
/// elements may read or write halo slots and run only after wait().
struct RankPhases {
  aligned_vector<idx_t> interior;  ///< owned elements, halo-independent
  aligned_vector<idx_t> boundary;  ///< owned remainder (+ execute halo)
};

/// A loop's pinned halo-exchange schedule, derived once at dist::Loop
/// construction from the argument types (compile-time access modes) and the
/// runtime dat identities:
///   * read_dats — datasets the loop consumes halo values of (indirect
///     reads always; direct reads/increments too when the loop redundantly
///     executes the import halo), refreshed before the run if dirty;
///   * write_dats — datasets the loop modifies, whose halo copies are
///     invalidated after the run;
///   * can_overlap / phases — whether the exchange may legally overlap
///     interior compute, and the per-rank element classification that makes
///     the overlap possible. can_overlap is false (and phases stays empty)
///     when the loop has nothing to exchange, or when a dat appears in both
///     lists: the transport may read owner values any time between begin()
///     and wait(), so a loop writing what it reads stale must take the
///     blocking path.
struct ExchangePlan {
  std::vector<int> read_dats;
  std::vector<int> write_dats;
  bool can_overlap = false;
  std::vector<RankPhases> phases;  ///< per rank; empty unless can_overlap
};

/// How a dist::Loop schedules its halo exchange relative to compute.
enum class ExchangeMode {
  Blocking,  ///< exchange, then one contiguous full run (the classic path)
  Phased,    ///< exchange, then interior slice, then boundary slice —
             ///< the overlapped schedule with a blocking exchange (its
             ///< bitwise-identical control)
  Overlap,   ///< begin exchange, interior slice, wait, boundary slice
};

constexpr const char* exchange_mode_name(ExchangeMode m) {
  switch (m) {
    case ExchangeMode::Blocking: return "Blocking";
    case ExchangeMode::Phased: return "Phased";
    case ExchangeMode::Overlap: return "Overlap";
  }
  return "?";
}

/// Transport interface: refresh every halo slot of one dataset from its
/// owning rank. Implementations are exchange mechanisms only — the dirty
/// tracking and the decision of WHICH dats to refresh stay with the context
/// and the loop's ExchangePlan.
class Exchanger {
 public:
  virtual ~Exchanger() = default;

  /// Blocking: fill halo slots [nowned, ntotal) of `view`'s dat on every
  /// rank from the owner replica; returns the number of scalar values
  /// copied.
  virtual std::int64_t exchange(const Partitioned& part, const DatHaloView& view) = 0;

  /// Non-blocking pair. Contract: every begin(view) is matched by exactly
  /// one wait(view) before any consumer reads the halo slots; between the
  /// two calls the transport may read owner slots and write halo slots of
  /// the dat at any time. The default adapter keeps blocking-only
  /// transports working: begin is a no-op and wait performs the blocking
  /// exchange.
  virtual void begin(const Partitioned& part, const DatHaloView& view) {
    (void)part;
    (void)view;
  }
  /// Complete the exchange started by begin(); returns values copied.
  virtual std::int64_t wait(const Partitioned& part, const DatHaloView& view) {
    return exchange(part, view);
  }

  [[nodiscard]] virtual const char* name() const = 0;
};

/// The in-process transport: all rank replicas share one address space, so a
/// halo slot is refreshed with a single memcpy from the owner's storage.
class MemcpyExchanger final : public Exchanger {
 public:
  std::int64_t exchange(const Partitioned& part, const DatHaloView& view) override {
    std::int64_t copied = 0;
    for (int r = 0; r < part.nranks(); ++r) {
      const LocalLayout& L = part.layout(r, view.set);
      const idx_t nhalo = L.ntotal - L.nowned;
      for (idx_t i = 0; i < nhalo; ++i) {
        halo_copy_row(view, r, L.nowned + i, L.src_rank[i], L.src_local[i]);
        copied += view.dim;
      }
    }
    return copied;
  }

  [[nodiscard]] const char* name() const override { return "memcpy"; }
};

/// Two-sided staging transport: begin() packs each destination rank's halo
/// values into per-neighbor send buffers (halo slots grouped by owning
/// rank — one contiguous run per (owner, destination) pair, exactly the
/// message an MPI_Isend would carry) and wait() unpacks them into the halo
/// slots. exchange() is begin()+wait(). With `async`, begin() hands the
/// pack+unpack to a background task and wait() joins it, so the copy truly
/// runs while interior compute proceeds — legal because an overlapping loop
/// never writes a dat it reads stale (ExchangePlan::can_overlap) and its
/// interior elements touch no halo slot.
class StagedExchanger final : public Exchanger {
 public:
  explicit StagedExchanger(bool async = false) : async_(async) {}

  void begin(const Partitioned& part, const DatHaloView& view) override {
    Pending& p = pending_[view.dat];
    OPV_REQUIRE(!p.active, "StagedExchanger: begin() without a matching wait() for dat "
                               << view.dat);
    p.active = true;
    const Staging& st = staging(part, view.set);
    auto job = [this, &part, view, &st, &p] { return transfer(part, view, st, p); };
    if (async_) p.task = std::async(std::launch::async, job);
    else p.copied = job();
  }

  std::int64_t wait(const Partitioned& part, const DatHaloView& view) override {
    (void)part;
    auto it = pending_.find(view.dat);
    OPV_REQUIRE(it != pending_.end() && it->second.active,
                "StagedExchanger: wait() without a matching begin() for dat " << view.dat);
    Pending& p = it->second;
    const std::int64_t copied = p.task.valid() ? p.task.get() : p.copied;
    p.active = false;
    return copied;
  }

  std::int64_t exchange(const Partitioned& part, const DatHaloView& view) override {
    begin(part, view);
    return wait(part, view);
  }

  [[nodiscard]] const char* name() const override { return async_ ? "staged-async" : "staged"; }

  /// Number of point-to-point messages one exchange of a dat on `set`
  /// would need (the (owner, destination) pairs with a non-empty halo run).
  [[nodiscard]] int message_count(const Partitioned& part, int set) {
    return staging(part, set).nmessages;
  }

 private:
  /// Pinned per-set pack order: for each destination rank, its halo slot
  /// indices grouped by owning rank (ascending), with one run per owner.
  struct Staging {
    struct Dest {
      aligned_vector<idx_t> order;    ///< halo slot indices, grouped by owner
      std::vector<idx_t> run_offset;  ///< per-owner run bounds into `order`
      std::vector<int> run_owner;     ///< owning rank of each run
    };
    std::vector<Dest> dest;  ///< per destination rank
    int nmessages = 0;
  };

  struct Pending {
    bool active = false;
    std::int64_t copied = 0;
    std::vector<unsigned char> buf;  ///< packed send data, all destinations
    std::future<std::int64_t> task;
  };

  const Staging& staging(const Partitioned& part, int set) {
    auto it = staging_.find(set);
    if (it != staging_.end()) return it->second;
    Staging st;
    st.dest.resize(static_cast<std::size_t>(part.nranks()));
    for (int r = 0; r < part.nranks(); ++r) {
      const LocalLayout& L = part.layout(r, set);
      const idx_t nhalo = L.ntotal - L.nowned;
      Staging::Dest& d = st.dest[static_cast<std::size_t>(r)];
      d.order.resize(static_cast<std::size_t>(nhalo));
      for (idx_t i = 0; i < nhalo; ++i) d.order[i] = i;
      std::stable_sort(d.order.begin(), d.order.end(),
                       [&](idx_t a, idx_t b) { return L.src_rank[a] < L.src_rank[b]; });
      for (idx_t j = 0; j < nhalo; ++j) {
        const int owner = L.src_rank[d.order[j]];
        if (d.run_owner.empty() || d.run_owner.back() != owner) {
          d.run_owner.push_back(owner);
          d.run_offset.push_back(j);
          ++st.nmessages;
        }
      }
      d.run_offset.push_back(nhalo);
    }
    return staging_.emplace(set, std::move(st)).first->second;
  }

  /// Pack every (owner -> destination) message, then unpack into the halo
  /// slots — the Isend/Irecv payload round-trip, collapsed in-process.
  std::int64_t transfer(const Partitioned& part, const DatHaloView& view, const Staging& st,
                        Pending& p) {
    const std::size_t stride = view.value_bytes * static_cast<std::size_t>(view.dim);
    std::size_t total = 0;
    for (const auto& d : st.dest) total += d.order.size() * stride;
    p.buf.resize(total);

    std::size_t off = 0;
    for (int r = 0; r < part.nranks(); ++r) {  // pack (the send side)
      const LocalLayout& L = part.layout(r, view.set);
      const Staging::Dest& d = st.dest[static_cast<std::size_t>(r)];
      for (idx_t j = 0; j < static_cast<idx_t>(d.order.size()); ++j) {
        const idx_t i = d.order[j];
        halo_pack_row(view, L.src_rank[i], L.src_local[i], p.buf.data() + off);
        off += stride;
      }
    }

    std::int64_t copied = 0;
    off = 0;
    for (int r = 0; r < part.nranks(); ++r) {  // unpack (the receive side)
      const LocalLayout& L = part.layout(r, view.set);
      const Staging::Dest& d = st.dest[static_cast<std::size_t>(r)];
      for (idx_t j = 0; j < static_cast<idx_t>(d.order.size()); ++j) {
        halo_unpack_row(view, r, L.nowned + d.order[j], p.buf.data() + off);
        off += stride;
        copied += view.dim;
      }
    }
    return copied;
  }

  bool async_;
  std::unordered_map<int, Staging> staging_;   ///< per set, pinned
  std::unordered_map<int, Pending> pending_;   ///< per dat
};

}  // namespace opv::dist
