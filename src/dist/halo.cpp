#include "dist/halo.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace opv::dist {

// ---- GlobalSpec -------------------------------------------------------------

int GlobalSpec::add_set(std::string name, idx_t size) {
  OPV_REQUIRE(size >= 0, "GlobalSpec: set '" << name << "' has negative size");
  sets.push_back({std::move(name), size});
  return static_cast<int>(sets.size()) - 1;
}

int GlobalSpec::add_map(std::string name, int from, int to, int dim, const idx_t* data) {
  OPV_REQUIRE(from >= 0 && from < static_cast<int>(sets.size()), "GlobalSpec: bad from set");
  OPV_REQUIRE(to >= 0 && to < static_cast<int>(sets.size()), "GlobalSpec: bad to set");
  OPV_REQUIRE(dim >= 1, "GlobalSpec: map arity must be >= 1");
  const std::size_t n = static_cast<std::size_t>(sets[from].size) * dim;
  MapSpec m{std::move(name), from, to, dim, aligned_vector<idx_t>(data, data + n)};
  for (idx_t g : m.data)
    OPV_REQUIRE(g >= 0 && g < sets[to].size,
                "GlobalSpec: map '" << m.name << "' entry " << g << " outside target set");
  maps.push_back(std::move(m));
  return static_cast<int>(maps.size()) - 1;
}

// ---- ownership derivation ---------------------------------------------------

std::vector<aligned_vector<int>> derive_ownership(const GlobalSpec& spec, int primary_set,
                                                  const aligned_vector<int>& primary_owner,
                                                  int nranks) {
  const int nsets = static_cast<int>(spec.sets.size());
  OPV_REQUIRE(primary_set >= 0 && primary_set < nsets, "derive_ownership: bad primary set");
  OPV_REQUIRE(primary_owner.size() == static_cast<std::size_t>(spec.sets[primary_set].size),
              "derive_ownership: primary owner size mismatch");
  for (int r : primary_owner)
    OPV_REQUIRE(r >= 0 && r < nranks, "derive_ownership: primary owner " << r << " out of range");

  std::vector<aligned_vector<int>> owner(nsets);
  std::vector<bool> resolved(nsets, false);
  for (int s = 0; s < nsets; ++s)
    owner[s].assign(static_cast<std::size_t>(spec.sets[s].size), -1);
  owner[primary_set] = primary_owner;
  resolved[primary_set] = true;

  // Fixed-point propagation through the maps, in declaration order.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& m : spec.maps) {
      if (!resolved[m.from] && resolved[m.to]) {
        // From-elements inherit from their FIRST target (map index 0).
        auto& of = owner[m.from];
        const auto& ot = owner[m.to];
        for (std::size_t f = 0; f < of.size(); ++f)
          of[f] = ot[m.data[f * m.dim]];
        resolved[m.from] = true;
        progress = true;
      } else if (resolved[m.from] && !resolved[m.to]) {
        // Targets inherit from the first resolved referencing element.
        const auto& of = owner[m.from];
        auto& ot = owner[m.to];
        for (std::size_t f = 0; f < of.size(); ++f)
          for (int k = 0; k < m.dim; ++k) {
            int& o = ot[m.data[f * m.dim + k]];
            if (o < 0) o = of[f];
          }
        // Elements no map entry references (e.g. corner nodes touched by no
        // interior edge) still need exactly one owner: spread them
        // round-robin — they have no halo, any owner is correct.
        for (std::size_t g = 0; g < ot.size(); ++g)
          if (ot[g] < 0) ot[g] = static_cast<int>(g % nranks);
        resolved[m.to] = true;
        progress = true;
      }
    }
  }
  for (int s = 0; s < nsets; ++s)
    OPV_REQUIRE(resolved[s], "derive_ownership: set '"
                                 << spec.sets[s].name
                                 << "' is unreachable from the partitioned set through the "
                                    "declared maps");
  return owner;
}

// ---- Partitioned ------------------------------------------------------------

Partitioned::Partitioned(const GlobalSpec& spec, const std::vector<aligned_vector<int>>& owner,
                         int nranks)
    : nranks_(nranks), nsets_(spec.sets.size()), nmaps_(spec.maps.size()) {
  OPV_REQUIRE(nranks >= 1, "Partitioned: nranks must be >= 1");
  OPV_REQUIRE(owner.size() == nsets_, "Partitioned: ownership for every set required");
  const int nsets = static_cast<int>(nsets_);

  // owned_index[s][g]: position of g within its owner's owned list (owned
  // lists are ascending in global id, so this is a per-rank running count).
  std::vector<aligned_vector<idx_t>> owned_index(nsets_);
  std::vector<std::vector<idx_t>> owned_count(nsets_,
                                              std::vector<idx_t>(static_cast<std::size_t>(nranks),
                                                                 0));
  for (int s = 0; s < nsets; ++s) {
    owned_index[s].assign(owner[s].size(), -1);
    for (std::size_t g = 0; g < owner[s].size(); ++g)
      owned_index[s][g] = owned_count[s][owner[s][g]]++;
  }

  // Execute halo: for every map F->T and from-element f, f must be executed
  // by every rank owning one of its targets. One pass over all map entries.
  // exec_flag[r*nsets+s] marks global elements of set s rank r must execute
  // but does not own.
  std::vector<std::vector<char>> halo_flag(static_cast<std::size_t>(nranks) * nsets_);
  auto flag = [&](int r, int s) -> std::vector<char>& {
    auto& v = halo_flag[static_cast<std::size_t>(r) * nsets_ + s];
    if (v.empty()) v.assign(owner[s].size() + 1, 0);  // +1 so empty sets allocate
    return v;
  };
  // 1 = exec halo, 2 = non-exec halo (exec wins).
  for (const auto& m : spec.maps) {
    const auto& of = owner[m.from];
    const auto& ot = owner[m.to];
    for (std::size_t f = 0; f < of.size(); ++f)
      for (int k = 0; k < m.dim; ++k) {
        const int rt = ot[m.data[f * m.dim + k]];
        if (rt != of[f]) flag(rt, m.from)[f] = 1;
      }
  }
  // Non-execute halo: targets of maps from executed elements.
  for (const auto& m : spec.maps) {
    const auto& of = owner[m.from];
    const auto& ot = owner[m.to];
    for (int r = 0; r < nranks; ++r) {
      auto& from_flags = flag(r, m.from);
      auto& to_flags = flag(r, m.to);
      for (std::size_t f = 0; f < of.size(); ++f) {
        if (of[f] != r && from_flags[f] != 1) continue;  // not executed by r
        for (int k = 0; k < m.dim; ++k) {
          const idx_t g = m.data[f * m.dim + k];
          if (ot[g] != r && to_flags[g] == 0) to_flags[g] = 2;
        }
      }
    }
  }

  // Layouts.
  layouts_.resize(static_cast<std::size_t>(nranks) * nsets_);
  for (int r = 0; r < nranks; ++r)
    for (int s = 0; s < nsets; ++s) {
      LocalLayout& L = layouts_[static_cast<std::size_t>(r) * nsets_ + s];
      const auto& own = owner[s];
      const auto& fl = flag(r, s);
      const std::size_t n = own.size();
      for (std::size_t g = 0; g < n; ++g)
        if (own[g] == r) L.local_to_global.push_back(static_cast<idx_t>(g));
      L.nowned = static_cast<idx_t>(L.local_to_global.size());
      for (std::size_t g = 0; g < n; ++g)
        if (fl[g] == 1) L.local_to_global.push_back(static_cast<idx_t>(g));
      L.nexec = static_cast<idx_t>(L.local_to_global.size()) - L.nowned;
      for (std::size_t g = 0; g < n; ++g)
        if (fl[g] == 2) L.local_to_global.push_back(static_cast<idx_t>(g));
      L.ntotal = static_cast<idx_t>(L.local_to_global.size());
      for (idx_t i = L.nowned; i < L.ntotal; ++i) {
        const idx_t g = L.local_to_global[i];
        L.src_rank.push_back(own[g]);
        L.src_local.push_back(owned_index[s][g]);
      }
    }

  // Localized sets, then maps (maps hold references into sets_, which must
  // therefore never reallocate after this reserve).
  sets_.reserve(static_cast<std::size_t>(nranks) * nsets_);
  for (int r = 0; r < nranks; ++r)
    for (int s = 0; s < nsets; ++s) {
      const LocalLayout& L = layout(r, s);
      sets_.emplace_back(spec.sets[s].name, L.nowned, L.nowned + L.nexec, L.ntotal);
    }

  maps_.reserve(static_cast<std::size_t>(nranks) * nmaps_);
  for (int r = 0; r < nranks; ++r) {
    // global -> local lookup for this rank, built per set on demand.
    std::vector<aligned_vector<idx_t>> g2l(nsets_);
    auto lookup = [&](int s) -> const aligned_vector<idx_t>& {
      auto& v = g2l[s];
      if (v.empty()) {
        const LocalLayout& L = layout(r, s);
        v.assign(owner[s].size() + 1, -1);
        for (idx_t l = 0; l < L.ntotal; ++l) v[L.local_to_global[l]] = l;
      }
      return v;
    };
    for (std::size_t mi = 0; mi < nmaps_; ++mi) {
      const auto& m = spec.maps[mi];
      const LocalLayout& Lf = layout(r, m.from);
      const auto& to_local = lookup(m.to);
      aligned_vector<idx_t> data(static_cast<std::size_t>(Lf.ntotal) * m.dim, 0);
      const idx_t nexec_end = Lf.nowned + Lf.nexec;
      for (idx_t l = 0; l < nexec_end; ++l) {
        const idx_t g = Lf.local_to_global[l];
        for (int k = 0; k < m.dim; ++k) {
          const idx_t tl = to_local[m.data[static_cast<std::size_t>(g) * m.dim + k]];
          OPV_REQUIRE(tl >= 0, "halo construction: executed element references an element "
                               "absent from the local layout (internal error)");
          data[static_cast<std::size_t>(l) * m.dim + k] = tl;
        }
      }
      maps_.emplace_back(m.name, set(r, m.from), set(r, m.to), m.dim, std::move(data));
    }
  }
}

}  // namespace opv::dist
