// Halo construction for the distributed-rank model: ownership derivation,
// per-rank local layouts (owned | execute-halo | non-execute-halo), and the
// localized sets/maps each rank executes against.
//
// This reproduces OP2's MPI import/export halo design (paper section 3):
//   * every element has exactly one owner rank;
//   * a rank redundantly executes ("execute halo") every non-owned element
//     whose mapping touches one of its owned elements, so indirect
//     increments into owned data complete without communication;
//   * every element referenced through a mapping from an executed element
//     is locally addressable — if not owned or executed it becomes
//     "non-execute halo" (readable, never executed).
#pragma once

#include <string>
#include <vector>

#include "common/aligned.hpp"
#include "core/map.hpp"
#include "core/set.hpp"

namespace opv::dist {

/// The global (pre-partitioning) universe of sets and maps, as declared
/// through DistCtx before finalize().
struct GlobalSpec {
  struct SetSpec {
    std::string name;
    idx_t size = 0;
  };
  struct MapSpec {
    std::string name;
    int from = -1;
    int to = -1;
    int dim = 0;
    aligned_vector<idx_t> data;  ///< sets[from].size * dim entries
  };

  std::vector<SetSpec> sets;
  std::vector<MapSpec> maps;

  int add_set(std::string name, idx_t size);
  /// Copies sets[from].size * dim entries from data.
  int add_map(std::string name, int from, int to, int dim, const idx_t* data);
};

/// Derive per-set ownership from the primary set's partition by walking the
/// declared maps (in declaration order) until every set is resolved:
///   * a map whose FROM set is unresolved and whose TO set is resolved
///     assigns each from-element the owner of its first target (index 0) —
///     e.g. an edge inherits from its first cell;
///   * a map whose FROM set is resolved and whose TO set is unresolved
///     assigns each still-unowned target the owner of the first resolved
///     from-element that references it — e.g. a node is owned by some cell
///     containing it.
/// Throws opv::Error if any set is unreachable through the maps.
std::vector<aligned_vector<int>> derive_ownership(const GlobalSpec& spec, int primary_set,
                                                  const aligned_vector<int>& primary_owner,
                                                  int nranks);

/// One rank's view of one set. Local ids are ordered
/// [0, nowned) owned (ascending global id),
/// [nowned, nowned+nexec) execute halo (ascending global id),
/// [nowned+nexec, ntotal) non-execute halo (ascending global id).
struct LocalLayout {
  idx_t nowned = 0;
  idx_t nexec = 0;
  idx_t ntotal = 0;
  aligned_vector<idx_t> local_to_global;  ///< size ntotal
  /// For halo slot i (local id nowned+i): the owning rank and the owner's
  /// LOCAL index of the same global element — the halo exchange copies
  /// rank-src data from src_local[i] into slot i.
  aligned_vector<int> src_rank;     ///< size ntotal - nowned
  aligned_vector<idx_t> src_local;  ///< size ntotal - nowned
};

/// The partitioned universe: per-rank layouts, localized Sets (with the
/// owned/exec/total size triple) and localized Maps (entries rewritten to
/// rank-local indices; rows of never-executed elements are zero-filled).
class Partitioned {
 public:
  Partitioned(const GlobalSpec& spec, const std::vector<aligned_vector<int>>& owner, int nranks);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int nsets() const { return static_cast<int>(nsets_); }

  [[nodiscard]] const LocalLayout& layout(int rank, int set) const {
    return layouts_[static_cast<std::size_t>(rank) * nsets_ + set];
  }
  [[nodiscard]] const Set& set(int rank, int set_id) const {
    return sets_[static_cast<std::size_t>(rank) * nsets_ + set_id];
  }
  [[nodiscard]] const Map& map(int rank, int map_id) const {
    return maps_[static_cast<std::size_t>(rank) * nmaps_ + map_id];
  }

 private:
  int nranks_ = 0;
  std::size_t nsets_ = 0;
  std::size_t nmaps_ = 0;
  std::vector<LocalLayout> layouts_;  ///< [rank*nsets + set]
  std::vector<Set> sets_;             ///< [rank*nsets + set]
  std::vector<Map> maps_;             ///< [rank*nmaps + map]
};

}  // namespace opv::dist
