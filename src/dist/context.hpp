// DistCtx: the distributed-rank execution context (OP2's MPI model as a
// single-process rank simulator).
//
// Application drivers written against the Context concept (decl_set /
// decl_map / decl_dat / arg / loop / fetch) run unchanged: DistCtx
// partitions the primary set geometrically at finalize(), derives ownership
// of every other set through the maps, builds owned/exec/non-exec halo
// layouts (halo.hpp), and replicates each dataset per rank.
//
// Execution goes through dist::Loop handles (dist/loop.hpp): a Loop pins the
// halo-exchange plan, the per-rank argument bindings and one opv::Loop per
// rank at construction, so steady-state run() does zero setup. The context's
// loop(...) member is a one-shot wrapper over a throwaway Loop — exactly the
// relationship opv::par_loop has to opv::Loop. The execution model:
//   * owner-compute redundant execution: loops with indirect increments
//     execute the import halo so owned data gets every contribution locally;
//   * dirty-bit lazy halo exchange: a dataset's halo copies are refreshed
//     only when a loop will actually read them and a previous loop has
//     modified the dataset (exchanges are recorded as "<loop>/halo" in the
//     stats registry). The bytes move through a pluggable Exchanger
//     (exchange.hpp); the default is the in-process MemcpyExchanger;
//   * interior/boundary phased execution (paper section 6.5): loops whose
//     exchange can legally overlap compute run begin_exchange -> interior
//     elements -> wait_exchange -> boundary elements, hiding exchange
//     latency behind the halo-independent majority of each rank's work
//     (set_exchange_mode selects Overlap / Phased / Blocking);
//   * cross-rank global reductions merged after the rank barrier.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/worker_pool.hpp"
#include "core/op2.hpp"
#include "dist/exchange.hpp"
#include "dist/halo.hpp"
#include "dist/partition.hpp"

namespace opv::dist {

/// The rank gang (promoted to common/worker_pool.hpp so serve/ and dist/
/// share one pool implementation); re-exported here for existing dist code
/// and tests that name dist::WorkerPool.
using opv::WorkerPool;

// ---- rank-addressable argument descriptors ---------------------------------

/// Dataset argument by handle: resolved to a typed opv::Arg on each rank's
/// replica when a dist::Loop is constructed. Access/arity/directness are
/// compile-time, like opv::Arg (Dim == opv::kDynDim = runtime arity).
template <class T, AccessMode A, int Dim, bool Ind>
struct DistArgDat {
  using scalar_type = T;
  static constexpr AccessMode access = A;
  static constexpr int dim = Dim;
  static constexpr bool indirect = Ind;
  static constexpr bool is_gbl = false;
  int dat = -1;
  int map = -1;
  int idx = -1;
};

template <class T, AccessMode A>
struct DistArgGbl {
  using scalar_type = T;
  static constexpr AccessMode access = A;
  static constexpr bool indirect = false;
  static constexpr bool is_gbl = true;
  T* ptr = nullptr;
  int dim = 1;
};

template <class Kernel, class... DArgs>
class Loop;

class DistCtx {
 public:
  using SetHandle = int;
  using MapHandle = int;
  template <class T>
  struct DatHandleT {
    int id = -1;
  };
  template <class T>
  using DatHandle = DatHandleT<T>;
  /// Statically-dimensioned handle (the dist counterpart of LocalCtx's
  /// FixedDat handles): carries the compile-time arity N so arg builders
  /// produce Dim == N descriptors without a per-argument Dim spelling.
  template <class T, int N>
  struct FixedDatHandleT {
    int id = -1;
  };
  template <class T, int N>
  using FixedDatHandle = FixedDatHandleT<T, N>;

  DistCtx(int nranks, ExecConfig cfg) : nranks_(nranks), cfg_(cfg), pool_(nranks) {
    OPV_REQUIRE(nranks >= 1, "DistCtx: need at least one rank");
  }

  ExecConfig& config() { return cfg_; }
  [[nodiscard]] const ExecConfig& config() const { return cfg_; }
  [[nodiscard]] int nranks() const { return nranks_; }

  // ---- declaration phase ---------------------------------------------------

  SetHandle decl_set(const std::string& name, idx_t size) {
    require_open("decl_set");
    return spec_.add_set(name, size);
  }

  /// Mark `s` as the primary (partitioned) set with interleaved ndims-D
  /// element coordinates (ndims is 2 or 3). Required before finalize().
  /// 3D meshes should pass their full xyz centroids with ndims == 3 so RCB
  /// bisects the true 3D bounding box instead of an xy projection.
  void set_partition_coords(SetHandle s, const double* coords, int ndims = 2) {
    require_open("set_partition_coords");
    OPV_REQUIRE(ndims == 2 || ndims == 3,
                "DistCtx::set_partition_coords: ndims must be 2 or 3, got " << ndims);
    primary_ = s;
    ndims_ = ndims;
    coords_.assign(coords,
                   coords + static_cast<std::size_t>(spec_.sets[s].size) * ndims);
  }

  MapHandle decl_map(const std::string& name, SetHandle from, SetHandle to, int dim,
                     const aligned_vector<idx_t>& data) {
    require_open("decl_map");
    return spec_.add_map(name, from, to, dim, data.data());
  }

  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim,
                        const aligned_vector<T>& init) {
    require_open("decl_dat");
    OPV_REQUIRE(init.size() == static_cast<std::size_t>(spec_.sets[set].size) * dim,
                "decl_dat '" << name << "': init size mismatch");
    auto e = std::make_unique<DatEntry<T>>();
    e->name = name;
    e->set = set;
    e->dim = dim;
    e->init = init;
    dats_.push_back(std::move(e));
    return {static_cast<int>(dats_.size()) - 1};
  }
  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim) {
    require_open("decl_dat");
    auto e = std::make_unique<DatEntry<T>>();
    e->name = name;
    e->set = set;
    e->dim = dim;
    dats_.push_back(std::move(e));
    return {static_cast<int>(dats_.size()) - 1};
  }

  /// Statically-dimensioned declaration, mirroring LocalCtx::decl_dat<T, N>:
  /// the handle carries the arity in its type, so arg<A>(d, ...) builds
  /// compile-time-Dim descriptors on every rank with no Dim at the loop
  /// sites.
  template <class T, int N>
  FixedDatHandle<T, N> decl_dat(const std::string& name, SetHandle set,
                                const aligned_vector<T>& init) {
    return {decl_dat<T>(name, set, N, init).id};
  }
  template <class T, int N>
  FixedDatHandle<T, N> decl_dat(const std::string& name, SetHandle set) {
    return {decl_dat<T>(name, set, N).id};
  }

  /// Request a memory layout for one dataset (core/layout.hpp): every rank
  /// replica is materialized in that physical layout at finalize(). Legal
  /// until finalize, like every other declaration.
  template <class H>
  void set_layout(H d, Layout l) {
    require_open("set_layout");
    dats_[d.id]->requested_layout = l;
    dats_[d.id]->layout_explicit = true;
  }

  /// Context-level layout default, applied at finalize() to every
  /// multi-component dat without an explicit set_layout — the same policy
  /// LocalCtx::set_default_layout implements locally. Pair with
  /// default_layout(backend) for the per-backend heuristic.
  void set_default_layout(Layout l) {
    require_open("set_default_layout");
    default_layout_ = l;
    have_default_layout_ = true;
  }

  /// Opt into the global renumbering pass (core/reorder.hpp): finalize()
  /// then renumbers the declared universe around the primary set BEFORE
  /// RCB partitioning, so each rank's owned elements also form contiguous
  /// RCM ranges. Must be set before finalize().
  void set_renumber(bool on) {
    require_open("set_renumber");
    renumber_on_finalize_ = on;
  }

  /// Partition, derive ownership, build halos, replicate datasets —
  /// preceded by the opt-in global renumbering pass.
  /// Idempotent; called implicitly by the first loop() or fetch().
  void finalize() {
    if (finalized_) return;
    OPV_REQUIRE(primary_ >= 0,
                "DistCtx::finalize: no partition coordinates declared "
                "(call set_partition_coords on the primary set)");
    if (renumber_on_finalize_) apply_renumber();
    const auto primary_owner =
        partition_rcb(coords_.data(), spec_.sets[primary_].size, nranks_, ndims_);
    auto owner = derive_ownership(spec_, primary_, primary_owner, nranks_);
    part_ = std::make_unique<Partitioned>(spec_, owner, nranks_);
    // Resolve the context-level layout default, then materialize every rank
    // replica in its dat's layout (the view the exchangers use is stamped
    // with the layout and the per-rank plane strides there).
    for (auto& d : dats_)
      if (have_default_layout_ && !d->layout_explicit && d->dim > 1)
        d->requested_layout = default_layout_;
    for (int i = 0; i < static_cast<int>(dats_.size()); ++i) dats_[i]->materialize(i, *part_);
    finalized_ = true;
  }

  /// The permutation (old declaration id -> new global id) the renumbering
  /// pass applied to a set, or nullptr if the set kept its numbering.
  [[nodiscard]] const aligned_vector<idx_t>* permutation(SetHandle s) {
    finalize();
    if (perms_.perm.empty() || perms_.identity(s)) return nullptr;
    return &perms_.of(s);
  }

  /// Every non-identity permutation applied, keyed by set name (test and
  /// tooling introspection — e.g. replaying the pass as a manual relayout).
  [[nodiscard]] std::map<std::string, aligned_vector<idx_t>> applied_permutations() {
    finalize();
    std::map<std::string, aligned_vector<idx_t>> out;
    for (int s = 0; s < static_cast<int>(spec_.sets.size()); ++s)
      if (!perms_.perm.empty() && !perms_.identity(s))
        out.emplace(spec_.sets[s].name, perms_.of(s));
    return out;
  }

  [[nodiscard]] const Partitioned& partitioned() const {
    OPV_REQUIRE(part_, "DistCtx::partitioned: finalize() has not run yet");
    return *part_;
  }

  // ---- halo-exchange transport --------------------------------------------

  /// Swap the halo-exchange transport. The default is the in-process
  /// MemcpyExchanger; a real MPI transport implements the same interface and
  /// replaces it here without touching the loop API.
  void set_exchanger(std::unique_ptr<Exchanger> e) {
    OPV_REQUIRE(e != nullptr, "DistCtx::set_exchanger: null exchanger");
    exchanger_ = std::move(e);
  }
  [[nodiscard]] Exchanger& exchanger() { return *exchanger_; }

  /// How loops schedule their exchange relative to compute (paper section
  /// 6.5). The default is Overlap: loops whose ExchangePlan permits it run
  /// begin -> interior -> wait -> boundary; loops that cannot legally
  /// overlap always fall back to Blocking regardless of this setting.
  /// Phased keeps the two-phase schedule but exchanges up front — the
  /// bitwise-identical control for measuring what the overlap buys.
  void set_exchange_mode(ExchangeMode m) { exchange_mode_ = m; }
  [[nodiscard]] ExchangeMode exchange_mode() const { return exchange_mode_; }

  // ---- typed argument builders --------------------------------------------

  template <AccessMode A, int Dim = kDynDim, class T>
    requires(dat_access_ok(A) && arg_dim_ok(Dim))
  DistArgDat<T, A, Dim, true> arg(DatHandle<T> d, int idx, MapHandle m) {
    OPV_REQUIRE(idx >= 0 && idx < spec_.maps[m].dim,
                "arg: map index " << idx << " out of range for map '" << spec_.maps[m].name
                                  << "'");
    OPV_REQUIRE(spec_.maps[m].to == dats_[d.id]->set,
                "arg: map '" << spec_.maps[m].name << "' does not target dat '"
                             << dats_[d.id]->name << "'s set");
    check_dim<Dim>(d);
    return {d.id, m, idx};
  }
  template <AccessMode A, int Dim = kDynDim, class T>
    requires(dat_access_ok(A) && arg_dim_ok(Dim))
  DistArgDat<T, A, Dim, false> arg(DatHandle<T> d) {
    check_dim<Dim>(d);
    return {d.id, -1, -1};
  }
  template <AccessMode A, class T>
    requires(gbl_access_ok(A))
  DistArgGbl<T, A> arg_gbl(T* p, int dim) {
    OPV_REQUIRE(dim >= 1 && dim <= kMaxDim,
                "arg_gbl: dim must be in [1," << kMaxDim << "]");
    return {p, dim};
  }

  template <class T, AccessMode A>
  auto arg(DatHandle<T> d, int idx, MapHandle m, AccessTag<A>) {
    return arg<A>(d, idx, m);
  }
  template <class T, AccessMode A>
  auto arg(DatHandle<T> d, AccessTag<A>) {
    return arg<A>(d);
  }
  template <class T, AccessMode A>
  auto arg_gbl(T* p, int dim, AccessTag<A>) {
    return arg_gbl<A>(p, dim);
  }

  // FixedDat handles: the handle's compile-time arity N resolves the
  // descriptor Dim (an explicit Dim must agree — the static counterpart of
  // check_dim), so loop sites spell no Dim at all.
  template <AccessMode A, int Dim = kDynDim, class T, int N>
    requires(dat_access_ok(A) && arg_dim_ok(Dim) && (Dim == kDynDim || Dim == N))
  DistArgDat<T, A, (Dim == kDynDim ? N : Dim), true> arg(FixedDatHandleT<T, N> d, int idx,
                                                         MapHandle m) {
    return arg<A, (Dim == kDynDim ? N : Dim)>(DatHandle<T>{d.id}, idx, m);
  }
  template <AccessMode A, int Dim = kDynDim, class T, int N>
    requires(dat_access_ok(A) && arg_dim_ok(Dim) && (Dim == kDynDim || Dim == N))
  DistArgDat<T, A, (Dim == kDynDim ? N : Dim), false> arg(FixedDatHandleT<T, N> d) {
    return arg<A, (Dim == kDynDim ? N : Dim)>(DatHandle<T>{d.id});
  }
  template <class T, int N, AccessMode A>
  auto arg(FixedDatHandleT<T, N> d, int idx, MapHandle m, AccessTag<A>) {
    return arg<A, N>(d, idx, m);
  }
  template <class T, int N, AccessMode A>
  auto arg(FixedDatHandleT<T, N> d, AccessTag<A>) {
    return arg<A, N>(d);
  }

  // ---- execution -----------------------------------------------------------

  /// One-shot execution: construct a dist::Loop, run it once, discard it.
  /// Steady-state callers (timestep-driven applications) should construct
  /// the Loop themselves and run() it repeatedly (dist/loop.hpp). Defined in
  /// loop.hpp.
  template <class Kernel, class... DArgs>
  void loop(Kernel kernel, const char* name, SetHandle set, DArgs... dargs);

  /// Build a persistent dist::Loop handle (the Context-concept spelling
  /// shared with LocalCtx::make_loop, so drivers templated over the context
  /// construct their handles once and run() them every timestep). Defined
  /// in loop.hpp.
  template <class Kernel, class... DArgs>
  Loop<Kernel, DArgs...> make_loop(Kernel kernel, const char* name, SetHandle set,
                                   DArgs... dargs);

  /// Copy a dataset's owned values into an array in the ORIGINAL declaration
  /// order (the global renumbering, when applied, is inverted here — the
  /// caller never observes the internal numbering).
  template <class T>
  void fetch(DatHandle<T> d, aligned_vector<T>& out) {
    finalize();
    auto& e = entry<T>(d.id);
    const aligned_vector<idx_t>* inv =
        static_cast<std::size_t>(e.set) < inv_.size() && !inv_[e.set].empty() ? &inv_[e.set]
                                                                              : nullptr;
    out.assign(static_cast<std::size_t>(spec_.sets[e.set].size) * e.dim, T{});
    for (int r = 0; r < nranks_; ++r) {
      const LocalLayout& L = part_->layout(r, e.set);
      const Dat<T>& dat = e.rank[r];
      for (idx_t l = 0; l < L.nowned; ++l) {
        const idx_t g = L.local_to_global[l];
        const idx_t orig = inv ? (*inv)[static_cast<std::size_t>(g)] : g;
        for (int c = 0; c < e.dim; ++c)
          out[static_cast<std::size_t>(orig) * e.dim + c] = dat.at(l, c);
      }
    }
  }
  template <class T, int N>
  void fetch(FixedDatHandleT<T, N> d, aligned_vector<T>& out) {
    fetch(DatHandle<T>{d.id}, out);
  }

 private:
  template <class Kernel, class... DArgs>
  friend class Loop;

  /// Construction-time check that a compile-time descriptor Dim matches the
  /// declared dat (the dist analog of opv::arg's check against dat.dim()).
  template <int Dim, class T>
  void check_dim(DatHandle<T> d) const {
    if constexpr (Dim != kDynDim)
      OPV_REQUIRE(dats_[d.id]->dim == Dim, "arg: descriptor Dim "
                                               << Dim << " != dat '" << dats_[d.id]->name
                                               << "' dim " << dats_[d.id]->dim);
  }

  // ---- dataset storage -----------------------------------------------------

  struct DatEntryBase {
    std::string name;
    int set = -1;
    int dim = 0;
    Layout requested_layout = Layout::AoS;  ///< layout every rank replica gets
    bool layout_explicit = false;  ///< set_layout was called (default skips it)
    bool dirty = false;  ///< halo copies stale relative to owner data
    DatHaloView view;    ///< type-erased transport view, pinned at materialize
    virtual ~DatEntryBase() = default;
    virtual void materialize(int id, const Partitioned& part) = 0;
    /// Row-permute the global initial values (renumbering pass; no-op for
    /// zero-initialized dats).
    virtual void permute_init(const aligned_vector<idx_t>& perm) = 0;
  };

  template <class T>
  struct DatEntry final : DatEntryBase {
    aligned_vector<T> init;   ///< global initial values (empty = zeros)
    std::deque<Dat<T>> rank;  ///< per-rank replica, local layout order

    void permute_init(const aligned_vector<idx_t>& perm) override {
      if (!init.empty()) reorder::permute_rows(perm, init.data(), dim);
    }

    void materialize(int id, const Partitioned& part) override {
      for (int r = 0; r < part.nranks(); ++r) {
        rank.emplace_back(name, part.set(r, set), dim);
        Dat<T>& d = rank.back();
        // Rank replicas inherit the dat's layout policy: convert (and
        // freeze) BEFORE filling, so the layout-aware at() addresses the
        // final physical form directly.
        d.set_layout(requested_layout);
        d.apply_layout();
        if (init.empty()) continue;
        const LocalLayout& L = part.layout(r, set);
        for (idx_t l = 0; l < L.ntotal; ++l)
          for (int c = 0; c < dim; ++c)
            d.at(l, c) = init[static_cast<std::size_t>(L.local_to_global[l]) * dim + c];
      }
      view.dat = id;
      view.set = set;
      view.dim = dim;
      view.value_bytes = sizeof(T);
      view.layout = requested_layout;
      view.rank_base.clear();
      view.rank_plane.clear();
      for (int r = 0; r < part.nranks(); ++r) {
        view.rank_base.push_back(reinterpret_cast<unsigned char*>(rank[r].data()));
        view.rank_plane.push_back(rank[r].plane());
      }
    }
  };

  template <class T>
  DatEntry<T>& entry(int id) {
    return *static_cast<DatEntry<T>*>(dats_[id].get());
  }

  // ---- halo management (called by dist::Loop) ------------------------------

  /// Refresh the listed datasets' halos through the exchanger, dirty ones
  /// only; returns the number of scalar values moved. A transport failure
  /// surfaces as opv::Error naming the dat and the transport (so an
  /// ensemble scheduler or driver knows WHAT failed, not just that
  /// something threw); the dat stays dirty for a clean retry.
  std::int64_t refresh_halos(const std::vector<int>& dat_ids) {
    std::int64_t exchanged = 0;
    for (int id : dat_ids) {
      DatEntryBase& d = *dats_[id];
      if (!d.dirty) continue;
      try {
        exchanged += exchanger_->exchange(*part_, d.view);
      } catch (const std::exception& e) {
        rethrow_exchange_failure("exchange", d, e);
      }
      d.dirty = false;
    }
    return exchanged;
  }

  /// Start a non-blocking refresh of the listed datasets' halos (dirty ones
  /// only), appending each started dat to `pending` for the matching
  /// wait_halos call. Dats whose begin() threw are NOT appended — their
  /// halos stay dirty and no orphaned wait() is owed for them.
  void begin_halos(const std::vector<int>& dat_ids, std::vector<int>& pending) {
    for (int id : dat_ids) {
      DatEntryBase& d = *dats_[id];
      if (!d.dirty) continue;
      try {
        exchanger_->begin(*part_, d.view);
      } catch (const std::exception& e) {
        rethrow_exchange_failure("begin", d, e);
      }
      pending.push_back(id);
    }
  }

  /// Complete the refreshes started by begin_halos; clears the dirty bits
  /// and returns the number of scalar values moved.
  std::int64_t wait_halos(const std::vector<int>& pending) {
    std::int64_t exchanged = 0;
    for (int id : pending) {
      DatEntryBase& d = *dats_[id];
      try {
        exchanged += exchanger_->wait(*part_, d.view);
      } catch (const std::exception& e) {
        rethrow_exchange_failure("wait", d, e);
      }
      d.dirty = false;
    }
    return exchanged;
  }

  void mark_dirty(const std::vector<int>& dat_ids) {
    for (int id : dat_ids) dats_[id]->dirty = true;
  }

  /// Wrap a transport exception with the halo-exchange context: which
  /// operation, which dat, which transport. The dat's dirty bit is left
  /// set by every caller, so a recovered instance re-exchanges cleanly.
  [[noreturn]] void rethrow_exchange_failure(const char* op, const DatEntryBase& d,
                                             const std::exception& e) const {
    throw Error(std::string("halo ") + op + " failed for dat '" + d.name + "' via transport '" +
                exchanger_->name() + "': " + e.what());
  }

  void require_open(const char* what) const {
    OPV_REQUIRE(!finalized_, "DistCtx::" << what << ": context already finalized");
  }

  /// The global renumbering pass (core/reorder.hpp), run at finalize()
  /// before partitioning: RCM on the primary set, from-sets sorted by their
  /// renumbered targets; spec maps relabeled/permuted, partition coordinates
  /// and dat initial values row-permuted, inverses kept for fetch().
  void apply_renumber() {
    std::vector<idx_t> sizes;
    sizes.reserve(spec_.sets.size());
    for (const auto& s : spec_.sets) sizes.push_back(s.size);
    std::vector<reorder::MapView> views;
    views.reserve(spec_.maps.size());
    for (auto& m : spec_.maps) views.push_back({m.from, m.to, m.dim, m.data.data()});

    perms_ = reorder::compute(sizes, views, primary_);
    reorder::apply_to_maps(perms_, views, sizes);
    if (!perms_.identity(primary_))
      reorder::permute_rows(perms_.of(primary_), coords_.data(), ndims_);
    for (auto& d : dats_)
      if (!perms_.identity(d->set)) d->permute_init(perms_.of(d->set));
    inv_.resize(spec_.sets.size());
    for (int s = 0; s < static_cast<int>(spec_.sets.size()); ++s)
      if (!perms_.identity(s)) inv_[static_cast<std::size_t>(s)] = reorder::invert(perms_.of(s));
  }

  int nranks_;
  ExecConfig cfg_;
  WorkerPool pool_;
  GlobalSpec spec_;
  int primary_ = -1;
  int ndims_ = 2;  ///< partition-coordinate dimensionality (2 or 3)
  aligned_vector<double> coords_;
  Layout default_layout_ = Layout::AoS;
  bool have_default_layout_ = false;
  std::vector<std::unique_ptr<DatEntryBase>> dats_;
  std::unique_ptr<Partitioned> part_;
  std::unique_ptr<Exchanger> exchanger_ = std::make_unique<MemcpyExchanger>();
  ExchangeMode exchange_mode_ = ExchangeMode::Overlap;
  bool renumber_on_finalize_ = false;
  reorder::Permutations perms_;          ///< old -> new per set (renumbering)
  std::vector<aligned_vector<idx_t>> inv_;  ///< new -> old per set, for fetch
  bool finalized_ = false;
};

}  // namespace opv::dist

// The Loop handle and the DistCtx::loop wrapper it backs live in a sibling
// header so either include order works (both are #pragma once).
#include "dist/loop.hpp"  // IWYU pragma: keep
