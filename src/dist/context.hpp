// DistCtx: the distributed-rank execution context (OP2's MPI model as a
// single-process rank simulator).
//
// Application drivers written against the Context concept (decl_set /
// decl_map / decl_dat / arg / loop / fetch) run unchanged: DistCtx
// partitions the primary set geometrically at finalize(), derives ownership
// of every other set through the maps, builds owned/exec/non-exec halo
// layouts (halo.hpp), and replicates each dataset per rank. Each loop() then
// runs one opv::par_loop per rank on the rank's localized sets/maps
// (concurrently, on plain threads), with:
//   * owner-compute redundant execution: loops with indirect increments
//     execute the import halo so owned data gets every contribution locally;
//   * dirty-bit lazy halo exchange: a dataset's halo copies are refreshed
//     only when a loop will actually read them and a previous loop has
//     modified the dataset (exchanges are recorded as "<loop>/halo" in the
//     stats registry);
//   * cross-rank global reductions merged after the rank barrier.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/op2.hpp"
#include "dist/halo.hpp"
#include "dist/partition.hpp"

namespace opv::dist {

/// Runs f(rank) for every rank concurrently and blocks until all finish.
/// The rank threads are persistent (one per rank for the pool's lifetime),
/// so repeated run() calls — one per parallel loop in a timestep-driven
/// application — pay a condition-variable wakeup, not a thread spawn. The
/// first exception thrown by any rank is rethrown in the caller.
class WorkerPool {
 public:
  explicit WorkerPool(int nranks) {
    OPV_REQUIRE(nranks >= 1, "WorkerPool: need at least one rank");
    state_.nranks = nranks;
    threads_.reserve(nranks);
    for (int r = 0; r < nranks; ++r) threads_.emplace_back([this, r] { worker(r); });
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(state_.mu);
      state_.stop = true;
    }
    state_.start_cv.notify_all();
    for (auto& t : threads_) t.join();
  }

  template <class F>
  void run(F&& f) {
    const std::function<void(int)> job(std::forward<F>(f));
    State& s = state_;
    std::unique_lock<std::mutex> lock(s.mu);
    s.job = &job;
    s.pending = s.nranks;
    ++s.generation;
    s.start_cv.notify_all();
    s.done_cv.wait(lock, [&] { return s.pending == 0; });
    s.job = nullptr;
    if (s.error) {
      const std::exception_ptr e = s.error;
      s.error = nullptr;
      std::rethrow_exception(e);
    }
  }

  [[nodiscard]] int size() const { return state_.nranks; }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable start_cv, done_cv;
    const std::function<void(int)>* job = nullptr;
    std::uint64_t generation = 0;
    int pending = 0;
    int nranks = 0;
    bool stop = false;
    std::exception_ptr error;
  };

  void worker(int r) {
    State& s = state_;
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(s.mu);
        s.start_cv.wait(lock, [&] { return s.stop || s.generation != seen; });
        if (s.stop) return;
        seen = s.generation;
        job = s.job;
      }
      try {
        (*job)(r);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.error) s.error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(s.mu);
        if (--s.pending == 0) s.done_cv.notify_all();
      }
    }
  }

  State state_;
  std::vector<std::thread> threads_;
};

// ---- rank-addressable argument descriptors ---------------------------------

/// Dataset argument by handle: resolved to a typed opv::Arg on each rank's
/// replica at loop() time. Access/directness are compile-time, like opv::Arg.
template <class T, AccessMode A, bool Ind>
struct DistArgDat {
  using scalar_type = T;
  static constexpr AccessMode access = A;
  static constexpr bool indirect = Ind;
  static constexpr bool is_gbl = false;
  int dat = -1;
  int map = -1;
  int idx = -1;
};

template <class T, AccessMode A>
struct DistArgGbl {
  using scalar_type = T;
  static constexpr AccessMode access = A;
  static constexpr bool indirect = false;
  static constexpr bool is_gbl = true;
  T* ptr = nullptr;
  int dim = 1;
};

class DistCtx {
 public:
  using SetHandle = int;
  using MapHandle = int;
  template <class T>
  struct DatHandleT {
    int id = -1;
  };
  template <class T>
  using DatHandle = DatHandleT<T>;

  DistCtx(int nranks, ExecConfig cfg) : nranks_(nranks), cfg_(cfg), pool_(nranks) {
    OPV_REQUIRE(nranks >= 1, "DistCtx: need at least one rank");
  }

  ExecConfig& config() { return cfg_; }
  [[nodiscard]] const ExecConfig& config() const { return cfg_; }
  [[nodiscard]] int nranks() const { return nranks_; }

  // ---- declaration phase ---------------------------------------------------

  SetHandle decl_set(const std::string& name, idx_t size) {
    require_open("decl_set");
    return spec_.add_set(name, size);
  }

  /// Mark `s` as the primary (partitioned) set with interleaved 2D element
  /// coordinates. Required before finalize().
  void set_partition_coords(SetHandle s, const double* xy) {
    require_open("set_partition_coords");
    primary_ = s;
    coords_.assign(xy, xy + static_cast<std::size_t>(spec_.sets[s].size) * 2);
  }

  MapHandle decl_map(const std::string& name, SetHandle from, SetHandle to, int dim,
                     const aligned_vector<idx_t>& data) {
    require_open("decl_map");
    return spec_.add_map(name, from, to, dim, data.data());
  }

  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim,
                        const aligned_vector<T>& init) {
    require_open("decl_dat");
    OPV_REQUIRE(init.size() == static_cast<std::size_t>(spec_.sets[set].size) * dim,
                "decl_dat '" << name << "': init size mismatch");
    auto e = std::make_unique<DatEntry<T>>();
    e->name = name;
    e->set = set;
    e->dim = dim;
    e->init = init;
    dats_.push_back(std::move(e));
    return {static_cast<int>(dats_.size()) - 1};
  }
  template <class T>
  DatHandle<T> decl_dat(const std::string& name, SetHandle set, int dim) {
    require_open("decl_dat");
    auto e = std::make_unique<DatEntry<T>>();
    e->name = name;
    e->set = set;
    e->dim = dim;
    dats_.push_back(std::move(e));
    return {static_cast<int>(dats_.size()) - 1};
  }

  /// Partition, derive ownership, build halos, replicate datasets.
  /// Idempotent; called implicitly by the first loop() or fetch().
  void finalize() {
    if (finalized_) return;
    OPV_REQUIRE(primary_ >= 0,
                "DistCtx::finalize: no partition coordinates declared "
                "(call set_partition_coords on the primary set)");
    const auto primary_owner =
        partition_rcb(coords_.data(), spec_.sets[primary_].size, nranks_);
    auto owner = derive_ownership(spec_, primary_, primary_owner, nranks_);
    part_ = std::make_unique<Partitioned>(spec_, owner, nranks_);
    for (auto& d : dats_) d->materialize(*part_);
    finalized_ = true;
  }

  [[nodiscard]] const Partitioned& partitioned() const {
    OPV_REQUIRE(part_, "DistCtx::partitioned: finalize() has not run yet");
    return *part_;
  }

  // ---- typed argument builders --------------------------------------------

  template <AccessMode A, class T>
    requires(dat_access_ok(A))
  DistArgDat<T, A, true> arg(DatHandle<T> d, int idx, MapHandle m) {
    OPV_REQUIRE(idx >= 0 && idx < spec_.maps[m].dim,
                "arg: map index " << idx << " out of range for map '" << spec_.maps[m].name
                                  << "'");
    OPV_REQUIRE(spec_.maps[m].to == dats_[d.id]->set,
                "arg: map '" << spec_.maps[m].name << "' does not target dat '"
                             << dats_[d.id]->name << "'s set");
    return {d.id, m, idx};
  }
  template <AccessMode A, class T>
    requires(dat_access_ok(A))
  DistArgDat<T, A, false> arg(DatHandle<T> d) {
    return {d.id, -1, -1};
  }
  template <AccessMode A, class T>
    requires(gbl_access_ok(A))
  DistArgGbl<T, A> arg_gbl(T* p, int dim) {
    OPV_REQUIRE(dim >= 1 && dim <= 8, "arg_gbl: dim must be in [1,8]");
    return {p, dim};
  }

  template <class T, AccessMode A>
  auto arg(DatHandle<T> d, int idx, MapHandle m, AccessTag<A>) {
    return arg<A>(d, idx, m);
  }
  template <class T, AccessMode A>
  auto arg(DatHandle<T> d, AccessTag<A>) {
    return arg<A>(d);
  }
  template <class T, AccessMode A>
  auto arg_gbl(T* p, int dim, AccessTag<A>) {
    return arg_gbl<A>(p, dim);
  }

  // ---- execution -----------------------------------------------------------

  template <class Kernel, class... DArgs>
  void loop(Kernel kernel, const char* name, SetHandle set, DArgs... dargs) {
    finalize();
    constexpr bool loop_has_inc = has_inc_v<DArgs...>;

    // 1. Lazy halo refresh for every dataset this loop will read stale.
    {
      std::vector<int> need;
      (collect_fresh<loop_has_inc>(dargs, need), ...);
      WallTimer ht;
      std::int64_t exchanged = 0;
      for (std::size_t i = 0; i < need.size(); ++i) {
        if (std::find(need.begin(), need.begin() + i, need[i]) != need.begin() + i) continue;
        DatEntryBase& d = *dats_[need[i]];
        if (!d.dirty) continue;
        exchanged += d.exchange(*part_);
        d.dirty = false;
      }
      if (exchanged > 0 && cfg_.collect_stats)
        StatsRegistry::instance().record(std::string(name) + "/halo", ht.seconds(), exchanged);
    }

    // 2. Run one par_loop per rank concurrently; globals get per-rank
    //    scratch merged after the barrier. The per-rank config is derived
    //    from the CURRENT cfg_ so mutations through config() take effect;
    //    per-rank stats stay off (the context records loop stats itself).
    WallTimer timer;
    ExecConfig rank_cfg = cfg_;
    rank_cfg.collect_stats = false;
    auto prepped = std::make_tuple(prep(dargs)...);
    std::apply(
        [&](auto&... p) {
          pool_.run([&](int r) {
            opv::par_loop(kernel, name, part_->set(r, set), rank_cfg, rank_arg(r, p)...);
          });
        },
        prepped);
    std::apply([&](auto&... p) { (merge_gbl(p), ...); }, prepped);

    // 3. Modified datasets now have stale halo copies everywhere.
    (mark_dirty(dargs), ...);

    if (cfg_.collect_stats)
      StatsRegistry::instance().record(name, timer.seconds(), spec_.sets[set].size);
  }

  /// Copy a dataset's owned values into a global-order array.
  template <class T>
  void fetch(DatHandle<T> d, aligned_vector<T>& out) {
    finalize();
    auto& e = entry<T>(d.id);
    out.assign(static_cast<std::size_t>(spec_.sets[e.set].size) * e.dim, T{});
    for (int r = 0; r < nranks_; ++r) {
      const LocalLayout& L = part_->layout(r, e.set);
      const Dat<T>& dat = e.rank[r];
      for (idx_t l = 0; l < L.nowned; ++l)
        for (int c = 0; c < e.dim; ++c)
          out[static_cast<std::size_t>(L.local_to_global[l]) * e.dim + c] = dat.at(l, c);
    }
  }

 private:
  // ---- dataset storage -----------------------------------------------------

  struct DatEntryBase {
    std::string name;
    int set = -1;
    int dim = 0;
    bool dirty = false;  ///< halo copies stale relative to owner data
    virtual ~DatEntryBase() = default;
    virtual void materialize(const Partitioned& part) = 0;
    /// Refresh every halo slot from its owner; returns values copied.
    virtual std::int64_t exchange(const Partitioned& part) = 0;
  };

  template <class T>
  struct DatEntry final : DatEntryBase {
    aligned_vector<T> init;   ///< global initial values (empty = zeros)
    std::deque<Dat<T>> rank;  ///< per-rank replica, local layout order

    void materialize(const Partitioned& part) override {
      for (int r = 0; r < part.nranks(); ++r) {
        rank.emplace_back(name, part.set(r, set), dim);
        if (init.empty()) continue;
        Dat<T>& d = rank.back();
        const LocalLayout& L = part.layout(r, set);
        for (idx_t l = 0; l < L.ntotal; ++l)
          for (int c = 0; c < dim; ++c)
            d.at(l, c) = init[static_cast<std::size_t>(L.local_to_global[l]) * dim + c];
      }
    }

    std::int64_t exchange(const Partitioned& part) override {
      std::int64_t copied = 0;
      for (int r = 0; r < part.nranks(); ++r) {
        const LocalLayout& L = part.layout(r, set);
        Dat<T>& dst = rank[r];
        for (idx_t i = 0; i < L.ntotal - L.nowned; ++i) {
          const Dat<T>& src = rank[L.src_rank[i]];
          for (int c = 0; c < dim; ++c) dst.at(L.nowned + i, c) = src.at(L.src_local[i], c);
          copied += dim;
        }
      }
      return copied;
    }
  };

  template <class T>
  DatEntry<T>& entry(int id) {
    return *static_cast<DatEntry<T>*>(dats_[id].get());
  }

  // ---- loop plumbing -------------------------------------------------------

  // Same conflict rule the core engine's arg_traits uses for coloring:
  // keeping them on one predicate keeps halo execution and plan coloring
  // in agreement.
  template <class... DA>
  static constexpr bool has_inc_v =
      ((!DA::is_gbl && DA::indirect && access_conflicting(DA::access)) || ...);

  /// Which datasets must have fresh halos before this loop: indirect reads
  /// always; direct reads too when the loop redundantly executes the halo
  /// (the kernel then consumes halo-element data to build owned increments).
  template <bool LoopHasInc, class DA>
  void collect_fresh(const DA& a, std::vector<int>& need) {
    if constexpr (!DA::is_gbl) {
      constexpr AccessMode A = DA::access;
      if constexpr (DA::indirect ? access_reads(A)
                                 : (LoopHasInc && (access_reads(A) || A == AccessMode::INC)))
        need.push_back(a.dat);
    }
  }

  template <class DA>
  void mark_dirty(const DA& a) {
    if constexpr (!DA::is_gbl && access_writes(DA::access)) dats_[a.dat]->dirty = true;
  }

  /// Per-loop state: dat args pass through; gbl args gain per-rank scratch.
  template <class T, AccessMode A, bool Ind>
  DistArgDat<T, A, Ind> prep(const DistArgDat<T, A, Ind>& a) {
    return a;
  }

  template <class T, AccessMode A>
  struct GblState {
    T* target;
    int dim;
    aligned_vector<T> buf;  ///< nranks * dim
  };
  template <class T, AccessMode A>
  GblState<T, A> prep(const DistArgGbl<T, A>& a) {
    GblState<T, A> s{a.ptr, a.dim, {}};
    s.buf.assign(static_cast<std::size_t>(nranks_) * a.dim, T{});
    for (int r = 0; r < nranks_; ++r)
      for (int c = 0; c < a.dim; ++c) {
        T v{};
        if constexpr (A == AccessMode::READ) v = a.ptr[c];
        else if constexpr (A == AccessMode::INC) v = T(0);
        else if constexpr (A == AccessMode::MIN) v = std::numeric_limits<T>::max();
        else v = std::numeric_limits<T>::lowest();
        s.buf[static_cast<std::size_t>(r) * a.dim + c] = v;
      }
    return s;
  }

  template <class T, AccessMode A, bool Ind>
  auto rank_arg(int r, DistArgDat<T, A, Ind>& a) {
    Dat<T>& d = entry<T>(a.dat).rank[r];
    if constexpr (Ind) return opv::arg<A>(d, a.idx, part_->map(r, a.map));
    else return opv::arg<A>(d);
  }
  template <class T, AccessMode A>
  auto rank_arg(int r, GblState<T, A>& s) {
    return opv::arg_gbl<A>(s.buf.data() + static_cast<std::size_t>(r) * s.dim, s.dim);
  }

  template <class T, AccessMode A, bool Ind>
  void merge_gbl(DistArgDat<T, A, Ind>&) {}
  template <class T, AccessMode A>
  void merge_gbl(GblState<T, A>& s) {
    if constexpr (A == AccessMode::READ) return;
    for (int r = 0; r < nranks_; ++r)
      for (int c = 0; c < s.dim; ++c) {
        const T v = s.buf[static_cast<std::size_t>(r) * s.dim + c];
        if constexpr (A == AccessMode::INC) s.target[c] += v;
        else if constexpr (A == AccessMode::MIN)
          s.target[c] = s.target[c] < v ? s.target[c] : v;
        else s.target[c] = s.target[c] > v ? s.target[c] : v;
      }
  }

  void require_open(const char* what) const {
    OPV_REQUIRE(!finalized_, "DistCtx::" << what << ": context already finalized");
  }

  int nranks_;
  ExecConfig cfg_;
  WorkerPool pool_;
  GlobalSpec spec_;
  int primary_ = -1;
  aligned_vector<double> coords_;
  std::vector<std::unique_ptr<DatEntryBase>> dats_;
  std::unique_ptr<Partitioned> part_;
  bool finalized_ = false;
};

}  // namespace opv::dist
