// FaultyExchanger: deterministic fault injection at the halo-transport seam.
//
// Wraps any Exchanger and misbehaves on the Nth begin()/exchange() call
// (counted across ALL dats — the transport-level view a flaky NIC would
// have). Four fault kinds cover the transport failure model:
//   * Drop    — the exchange silently never happens: halo slots keep their
//               stale values (a lost message without a timeout);
//   * Delay   — the exchange completes after an injected sleep (congestion;
//               results stay bitwise-identical, only timing shifts);
//   * Corrupt — the exchange completes, then one halo value is overwritten
//               with NaN, chosen deterministically from the seed (bit flips
//               on the wire; detected downstream by guard::check_finite);
//   * Throw   — begin() raises opv::Error (a transport hard failure;
//               surfaces through DistCtx's halo call sites with dat/
//               transport context and retires or retries the instance).
// Everything is deterministic — same plan + seed => same faulty run — which
// is what lets the resilience tests assert bitwise-identical recovery.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "dist/exchange.hpp"

namespace opv::dist {

enum class ExchangeFaultKind { Drop, Delay, Corrupt, Throw };

constexpr const char* exchange_fault_name(ExchangeFaultKind k) {
  switch (k) {
    case ExchangeFaultKind::Drop: return "drop";
    case ExchangeFaultKind::Delay: return "delay";
    case ExchangeFaultKind::Corrupt: return "corrupt";
    case ExchangeFaultKind::Throw: return "throw";
  }
  return "?";
}

struct ExchangeFaultPlan {
  ExchangeFaultKind kind = ExchangeFaultKind::Drop;
  std::int64_t at_begin = 1;    ///< fire on this begin()/exchange() call (1-based)
  std::int64_t period = 0;      ///< re-fire every `period` calls after (0 = once)
  double delay_seconds = 0.01;  ///< Delay: injected sleep
  std::uint32_t seed = 0x5eed;  ///< Corrupt: picks the poisoned halo slot
};

class FaultyExchanger final : public Exchanger {
 public:
  FaultyExchanger(std::unique_ptr<Exchanger> inner, ExchangeFaultPlan plan)
      : inner_(std::move(inner)), plan_(plan) {
    OPV_REQUIRE(inner_ != nullptr, "FaultyExchanger: null inner transport");
    OPV_REQUIRE(plan_.at_begin >= 1, "FaultyExchanger: at_begin is 1-based");
  }

  void begin(const Partitioned& part, const DatHaloView& view) override {
    const bool fire = fires(++begins_);
    if (fire) ++fired_;
    if (fire && plan_.kind == ExchangeFaultKind::Throw)
      throw opv::Error("FaultyExchanger: injected transport failure on begin " +
                       std::to_string(begins_));
    if (fire && plan_.kind == ExchangeFaultKind::Drop) {
      dropped_[view.dat] = true;  // swallow: no begin, and wait() will no-op
      return;
    }
    if (fire && plan_.kind == ExchangeFaultKind::Delay)
      std::this_thread::sleep_for(std::chrono::duration<double>(plan_.delay_seconds));
    if (fire && plan_.kind == ExchangeFaultKind::Corrupt) corrupt_[view.dat] = true;
    inner_->begin(part, view);
  }

  std::int64_t wait(const Partitioned& part, const DatHaloView& view) override {
    const auto dropped = dropped_.find(view.dat);
    if (dropped != dropped_.end() && dropped->second) {
      dropped->second = false;
      return 0;  // the lost message: halo slots keep their stale values
    }
    const std::int64_t copied = inner_->wait(part, view);
    const auto corrupt = corrupt_.find(view.dat);
    if (corrupt != corrupt_.end() && corrupt->second) {
      corrupt->second = false;
      poison(part, view);
    }
    return copied;
  }

  std::int64_t exchange(const Partitioned& part, const DatHaloView& view) override {
    begin(part, view);
    return wait(part, view);
  }

  [[nodiscard]] const char* name() const override { return "faulty"; }

  [[nodiscard]] std::int64_t begins() const { return begins_; }
  [[nodiscard]] std::int64_t faults_fired() const { return fired_; }

 private:
  [[nodiscard]] bool fires(std::int64_t call) const {
    if (call == plan_.at_begin) return true;
    return plan_.period > 0 && call > plan_.at_begin && (call - plan_.at_begin) % plan_.period == 0;
  }

  /// Overwrite one halo value with NaN, deterministically seed-chosen: the
  /// first rank with a non-empty halo, slot seed % nhalo, component
  /// seed % dim. Non-floating dats are left alone (a bit flip there is a
  /// different failure class than numerical blow-up).
  void poison(const Partitioned& part, const DatHaloView& view) {
    if (view.value_bytes != sizeof(float) && view.value_bytes != sizeof(double)) return;
    for (int r = 0; r < part.nranks(); ++r) {
      const LocalLayout& L = part.layout(r, view.set);
      const idx_t nhalo = L.ntotal - L.nowned;
      if (nhalo == 0) continue;
      const idx_t slot = L.nowned + static_cast<idx_t>(plan_.seed % static_cast<std::uint32_t>(nhalo));
      const int c = static_cast<int>(plan_.seed % static_cast<std::uint32_t>(view.dim));
      unsigned char* at = halo_value_ptr(view, r, slot, c);
      if (view.value_bytes == sizeof(float)) {
        const float nan = std::numeric_limits<float>::quiet_NaN();
        std::memcpy(at, &nan, sizeof(nan));
      } else {
        const double nan = std::numeric_limits<double>::quiet_NaN();
        std::memcpy(at, &nan, sizeof(nan));
      }
      return;
    }
  }

  std::unique_ptr<Exchanger> inner_;
  ExchangeFaultPlan plan_;
  std::int64_t begins_ = 0;
  std::int64_t fired_ = 0;
  std::unordered_map<int, bool> dropped_;  ///< per dat: begin swallowed
  std::unordered_map<int, bool> corrupt_;  ///< per dat: poison after wait
};

}  // namespace opv::dist
