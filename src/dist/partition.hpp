// Partitioners for the distributed-rank execution model (OP2's MPI design,
// reproduced as a single-process rank simulator in opv::dist).
//
// The primary set (the one the application attached coordinates to) is
// partitioned geometrically; every other set derives its ownership from the
// primary through the declared mappings (see halo.hpp).
#pragma once

#include "common/aligned.hpp"
#include "core/set.hpp"

namespace opv::dist {

/// Recursive coordinate bisection over interleaved coordinates
/// (coords[ndims*i + a] is axis a of element i; ndims is 2 or 3). Every
/// split cuts the longest axis of the TRUE ndims-dimensional bounding box —
/// a 3D mesh partitioned with ndims == 3 is never sliced on its xy
/// projection. Returns the owning part (0..nparts-1) of each of the n
/// elements. Parts are balanced to within a few elements and geometrically
/// compact; the result is deterministic.
aligned_vector<int> partition_rcb(const double* coords, idx_t n, int nparts, int ndims = 2);

/// Trivial contiguous-chunk partition: element i belongs to part
/// i / ceil(n/nparts). Used as a coordinate-free fallback and in tests.
aligned_vector<int> partition_block(idx_t n, int nparts);

/// Number of elements owned by each part.
std::vector<idx_t> part_sizes(const aligned_vector<int>& owner, int nparts);

}  // namespace opv::dist
