// dist::Loop: persistent distributed-loop handles — the dist analog of
// opv::Loop (core/par_loop.hpp).
//
// The paper's execution model builds per-loop plans once and amortizes them
// over thousands of timesteps (PPoPP'14 section 3); DistCtx::loop used to
// re-derive the stale-dataset set, re-prep per-rank argument bindings and
// re-resolve per-rank plans on every call. A dist::Loop pins all of it at
// construction:
//   * argument validation against the iteration set (direct dats must live
//     on it, indirect maps must be FROM it);
//   * the ExchangePlan: which dats the loop reads stale (refreshed through
//     the context's Exchanger before the run, dirty ones only) and which it
//     dirties (halo copies invalidated after the run);
//   * per-rank argument bindings: every DistArg resolved to a typed opv::Arg
//     on the rank's replica; globals bound to pinned per-rank scratch;
//   * one opv::Loop per rank, so the per-rank conflict analysis, coloring
//     plan and stats slot are pinned too.
// Steady-state run() therefore performs no per-call derivation, prep or
// lookup: refresh dirty halos, wake the rank pool, merge globals, flip dirty
// bits. run() also records each rank's wall time (max/min/mean accumulated
// in the loop's stats slot) so partition imbalance is visible (paper
// section 6; perf::rank_imbalance).
#pragma once

#include "dist/context.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace opv::dist {

namespace detail {

/// The opv argument type a DistArg resolves to on each rank. The
/// compile-time Dim carries straight through, so every rank's engine loop
/// gets the same fully-unrolled gather/scatter instantiations a local
/// opv::Loop would.
template <class DA>
struct rank_arg;
template <class T, AccessMode A, int Dim, bool Ind>
struct rank_arg<DistArgDat<T, A, Dim, Ind>> {
  using type = opv::Arg<T, A, Dim, Ind>;
};
template <class T, AccessMode A>
struct rank_arg<DistArgGbl<T, A>> {
  using type = opv::ArgGbl<T, A>;
};
template <class DA>
using rank_arg_t = typename rank_arg<DA>::type;

/// Pinned per-argument state: dat args need none (they are bound into the
/// rank loops); globals get per-rank scratch merged after the rank barrier.
struct NoPin {};
template <class T, AccessMode A>
struct GblPin {
  T* target = nullptr;
  int dim = 0;
  aligned_vector<T> buf;  ///< nranks * dim, pinned for the Loop's lifetime
};
template <class DA>
struct pin {
  using type = NoPin;
};
template <class T, AccessMode A>
struct pin<DistArgGbl<T, A>> {
  using type = GblPin<T, A>;
};
template <class DA>
using pin_t = typename pin<DA>::type;

// Same conflict rule the core engine's arg_traits uses for coloring:
// keeping them on one predicate keeps halo execution and plan coloring
// in agreement.
template <class... DA>
inline constexpr bool dist_has_inc_v =
    ((!DA::is_gbl && DA::indirect && access_conflicting(DA::access)) || ...);

}  // namespace detail

/// A distributed parallel loop bound to its kernel, iteration set and typed
/// rank-addressable arguments.
///
///   dist::Loop loop(ctx, ResCalc<double>{consts}, "res_calc", edges, args...);
///   for (int it = 0; it < 1000; ++it) loop.run();
///
/// Construction finalizes the context (first use partitions the mesh) and
/// pins the exchange plan, the per-rank bindings and one opv::Loop per rank.
/// Global argument pointers are captured at construction and must outlive
/// the Loop.
template <class Kernel, class... DArgs>
class Loop {
 public:
  static constexpr bool has_inc = detail::dist_has_inc_v<DArgs...>;
  using RankLoop = opv::Loop<Kernel, detail::rank_arg_t<DArgs>...>;

  Loop(DistCtx& ctx, Kernel kernel, std::string name, DistCtx::SetHandle set, DArgs... dargs)
      : ctx_(&ctx), name_(std::move(name)), set_(set) {
    ctx.finalize();
    global_size_ = ctx.spec_.sets[set].size;
    (validate(dargs), ...);
    (collect_read(dargs), ...);
    (collect_write(dargs), ...);
    setup_pins(std::index_sequence_for<DArgs...>{}, dargs...);
    rank_secs_.assign(static_cast<std::size_t>(ctx.nranks_), 0.0);
    rank_loops_.reserve(static_cast<std::size_t>(ctx.nranks_));
    for (int r = 0; r < ctx.nranks_; ++r)
      build_rank_loop(r, kernel, std::index_sequence_for<DArgs...>{}, dargs...);
  }

  /// Execute under the given per-rank configuration.
  void run(const ExecConfig& cfg) {
    DistCtx& ctx = *ctx_;

    // 1. Lazy halo refresh of the pinned stale-read set, through the
    //    context's Exchanger.
    if (!plan_.read_dats.empty()) {
      WallTimer ht;
      const std::int64_t exchanged = ctx.refresh_halos(plan_.read_dats);
      if (exchanged > 0 && cfg.collect_stats) {
        if (!halo_stats_) halo_stats_ = &StatsRegistry::instance().slot(name_ + "/halo");
        StatsRegistry::instance().record(*halo_stats_, ht.seconds(), exchanged);
      }
    }

    // 2. Run the pinned per-rank loops concurrently; per-rank stats stay off
    //    (this layer records loop stats itself), per-rank wall times are
    //    captured for the imbalance accounting.
    std::apply([&](auto&... p) { (reset_pin(p), ...); }, pins_);
    WallTimer timer;
    ExecConfig rank_cfg = cfg;
    rank_cfg.collect_stats = false;
    ctx.pool_.run([&](int r) {
      WallTimer rt;
      rank_loops_[static_cast<std::size_t>(r)].run(rank_cfg);
      rank_secs_[static_cast<std::size_t>(r)] = rt.seconds();
    });
    std::apply([&](auto&... p) { (merge_pin(p), ...); }, pins_);
    const double secs = timer.seconds();

    // 3. Modified datasets now have stale halo copies everywhere.
    ctx.mark_dirty(plan_.write_dats);

    if (cfg.collect_stats) {
      auto& reg = StatsRegistry::instance();
      if (!stats_) stats_ = &reg.slot(name_);
      reg.record(*stats_, secs, global_size_);
      reg.record_ranks(*stats_, rank_secs_.data(), static_cast<int>(rank_secs_.size()));
    }
  }

  /// Execute under the context's CURRENT configuration (mutations through
  /// DistCtx::config() take effect, as they always did for DistCtx::loop).
  void run() { run(ctx_->cfg_); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int nranks() const { return static_cast<int>(rank_loops_.size()); }

  /// The pinned halo-exchange schedule — one object for the Loop's lifetime
  /// (tests verify pinning through its address and contents).
  [[nodiscard]] const ExchangePlan& exchange_plan() const { return plan_; }

  /// The pinned per-rank engine handle (exposes the rank's coloring plan).
  [[nodiscard]] RankLoop& rank_loop(int r) {
    return rank_loops_[static_cast<std::size_t>(r)];
  }

  /// Per-rank wall seconds of the most recent run().
  [[nodiscard]] const std::vector<double>& rank_seconds() const { return rank_secs_; }

 private:
  // ---- construction-time derivation ----------------------------------------

  template <class T, AccessMode A, int Dim, bool Ind>
  void validate(const DistArgDat<T, A, Dim, Ind>& a) const {
    const GlobalSpec& spec = ctx_->spec_;
    if constexpr (Ind) {
      OPV_REQUIRE(spec.maps[a.map].from == set_,
                  "dist::Loop '" << name_ << "': map '" << spec.maps[a.map].name
                                 << "' is not from the iteration set '" << spec.sets[set_].name
                                 << "'");
    } else {
      OPV_REQUIRE(ctx_->dats_[a.dat]->set == set_,
                  "dist::Loop '" << name_ << "': direct dat '" << ctx_->dats_[a.dat]->name
                                 << "' does not live on the iteration set '"
                                 << spec.sets[set_].name << "'");
    }
  }
  template <class T, AccessMode A>
  void validate(const DistArgGbl<T, A>&) const {}

  /// Which datasets must have fresh halos before this loop: indirect reads
  /// always; direct reads too when the loop redundantly executes the halo
  /// (the kernel then consumes halo-element data to build owned increments).
  template <class DA>
  void collect_read(const DA& a) {
    if constexpr (!DA::is_gbl) {
      constexpr AccessMode A = DA::access;
      if constexpr (DA::indirect ? access_reads(A)
                                 : (has_inc && (access_reads(A) || A == AccessMode::INC))) {
        if (std::find(plan_.read_dats.begin(), plan_.read_dats.end(), a.dat) ==
            plan_.read_dats.end())
          plan_.read_dats.push_back(a.dat);
      }
    }
  }

  template <class DA>
  void collect_write(const DA& a) {
    if constexpr (!DA::is_gbl && access_writes(DA::access)) {
      if (std::find(plan_.write_dats.begin(), plan_.write_dats.end(), a.dat) ==
          plan_.write_dats.end())
        plan_.write_dats.push_back(a.dat);
    }
  }

  template <std::size_t... Is>
  void setup_pins(std::index_sequence<Is...>, const DArgs&... dargs) {
    (setup_pin(std::get<Is>(pins_), dargs), ...);
  }
  template <class T, AccessMode A, int Dim, bool Ind>
  void setup_pin(detail::NoPin&, const DistArgDat<T, A, Dim, Ind>&) {}
  template <class T, AccessMode A>
  void setup_pin(detail::GblPin<T, A>& g, const DistArgGbl<T, A>& a) {
    g.target = a.ptr;
    g.dim = a.dim;
    g.buf.assign(static_cast<std::size_t>(ctx_->nranks_) * a.dim, T{});
  }

  template <std::size_t... Is>
  void build_rank_loop(int r, const Kernel& kernel, std::index_sequence<Is...>,
                       const DArgs&... dargs) {
    rank_loops_.emplace_back(kernel, name_, ctx_->part_->set(r, set_),
                             bind_rank(r, dargs, std::get<Is>(pins_))...);
  }
  template <class T, AccessMode A, int Dim, bool Ind>
  auto bind_rank(int r, const DistArgDat<T, A, Dim, Ind>& a, detail::NoPin&) {
    Dat<T>& d = ctx_->template entry<T>(a.dat).rank[static_cast<std::size_t>(r)];
    if constexpr (Ind) return opv::arg<A, Dim>(d, a.idx, ctx_->part_->map(r, a.map));
    else return opv::arg<A, Dim>(d);
  }
  template <class T, AccessMode A>
  auto bind_rank(int r, const DistArgGbl<T, A>& a, detail::GblPin<T, A>& g) {
    return opv::arg_gbl<A>(g.buf.data() + static_cast<std::size_t>(r) * a.dim, a.dim);
  }

  // ---- per-run global scratch ----------------------------------------------

  void reset_pin(detail::NoPin&) {}
  template <class T, AccessMode A>
  void reset_pin(detail::GblPin<T, A>& g) {
    for (int r = 0; r < ctx_->nranks_; ++r)
      for (int c = 0; c < g.dim; ++c) {
        T v{};
        if constexpr (A == AccessMode::READ) v = g.target[c];
        else if constexpr (A == AccessMode::INC) v = T(0);
        else if constexpr (A == AccessMode::MIN) v = std::numeric_limits<T>::max();
        else v = std::numeric_limits<T>::lowest();
        g.buf[static_cast<std::size_t>(r) * g.dim + c] = v;
      }
  }

  void merge_pin(detail::NoPin&) {}
  template <class T, AccessMode A>
  void merge_pin(detail::GblPin<T, A>& g) {
    if constexpr (A == AccessMode::READ) return;
    for (int r = 0; r < ctx_->nranks_; ++r)
      for (int c = 0; c < g.dim; ++c) {
        const T v = g.buf[static_cast<std::size_t>(r) * g.dim + c];
        if constexpr (A == AccessMode::INC) g.target[c] += v;
        else if constexpr (A == AccessMode::MIN)
          g.target[c] = g.target[c] < v ? g.target[c] : v;
        else g.target[c] = g.target[c] > v ? g.target[c] : v;
      }
  }

  DistCtx* ctx_;
  std::string name_;
  DistCtx::SetHandle set_;
  idx_t global_size_ = 0;
  ExchangePlan plan_;
  std::tuple<detail::pin_t<DArgs>...> pins_;
  std::vector<RankLoop> rank_loops_;
  std::vector<double> rank_secs_;
  LoopRecord* stats_ = nullptr;
  LoopRecord* halo_stats_ = nullptr;
};

template <class Kernel, class... DArgs>
Loop(DistCtx&, Kernel, std::string, DistCtx::SetHandle, DArgs...) -> Loop<Kernel, DArgs...>;

// ---- the one-shot wrapper ---------------------------------------------------

/// Mirrors opv::par_loop over opv::Loop: identical call shape, throwaway
/// handle. The nranks engine handles are built serially on the caller
/// thread, so this path's per-call overhead grows with the rank count —
/// steady-state iteration should construct the Loop once (the dispatch
/// ablation bench measures the gap).
template <class Kernel, class... DArgs>
void DistCtx::loop(Kernel kernel, const char* name, SetHandle set, DArgs... dargs) {
  Loop<Kernel, DArgs...> l(*this, std::move(kernel), name, set, dargs...);
  l.run();
}

}  // namespace opv::dist
