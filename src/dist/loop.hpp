// dist::Loop: persistent distributed-loop handles — the dist analog of
// opv::Loop (core/par_loop.hpp).
//
// The paper's execution model builds per-loop plans once and amortizes them
// over thousands of timesteps (PPoPP'14 section 3); DistCtx::loop used to
// re-derive the stale-dataset set, re-prep per-rank argument bindings and
// re-resolve per-rank plans on every call. A dist::Loop pins all of it at
// construction:
//   * argument validation against the iteration set (direct dats must live
//     on it, indirect maps must be FROM it);
//   * the ExchangePlan: which dats the loop reads stale (refreshed through
//     the context's Exchanger before the run, dirty ones only) and which it
//     dirties (halo copies invalidated after the run);
//   * per-rank argument bindings: every DistArg resolved to a typed opv::Arg
//     on the rank's replica; globals bound to pinned per-rank scratch;
//   * one opv::Loop per rank, so the per-rank conflict analysis, coloring
//     plan and stats slot are pinned too.
// Steady-state run() therefore performs no per-call derivation, prep or
// lookup: refresh dirty halos, wake the rank pool, merge globals, flip dirty
// bits. run() also records each rank's wall time (max/min/mean accumulated
// in the loop's stats slot) so partition imbalance is visible (paper
// section 6; perf::rank_imbalance), plus the exchange wall time and value
// count (the section 6.5 communication share).
//
// Phased execution (paper section 6.5): construction also classifies each
// rank's owned elements into INTERIOR (no indirect argument reaches a halo
// slot — safe to execute while an exchange is in flight) and BOUNDARY (may
// read or write halo slots — must wait), pinned as one opv::Loop::Slice per
// phase per rank. Under ExchangeMode::Overlap (the default) run() does
//   begin_exchange -> interior slices -> wait_exchange -> boundary slices
// hiding exchange latency behind the halo-independent majority of the
// work; ExchangeMode::Phased runs the same slices after a blocking exchange
// (bitwise-identical results, no overlap — the measurement control), and
// loops that cannot legally overlap (nothing to exchange, or a dat both
// read stale and written, whose owner values the in-flight transport could
// observe mid-write) automatically fall back to the Blocking contiguous
// path.
#pragma once

#include "dist/context.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace opv::dist {

namespace detail {

/// The opv argument type a DistArg resolves to on each rank. The
/// compile-time Dim carries straight through, so every rank's engine loop
/// gets the same fully-unrolled gather/scatter instantiations a local
/// opv::Loop would.
template <class DA>
struct rank_arg;
template <class T, AccessMode A, int Dim, bool Ind>
struct rank_arg<DistArgDat<T, A, Dim, Ind>> {
  using type = opv::Arg<T, A, Dim, Ind>;
};
template <class T, AccessMode A>
struct rank_arg<DistArgGbl<T, A>> {
  using type = opv::ArgGbl<T, A>;
};
template <class DA>
using rank_arg_t = typename rank_arg<DA>::type;

/// Pinned per-argument state: dat args need none (they are bound into the
/// rank loops); globals get per-rank scratch merged after the rank barrier.
struct NoPin {};
template <class T, AccessMode A>
struct GblPin {
  T* target = nullptr;
  int dim = 0;
  aligned_vector<T> buf;  ///< nranks * dim, pinned for the Loop's lifetime
};
template <class DA>
struct pin {
  using type = NoPin;
};
template <class T, AccessMode A>
struct pin<DistArgGbl<T, A>> {
  using type = GblPin<T, A>;
};
template <class DA>
using pin_t = typename pin<DA>::type;

// Same conflict rule the core engine's arg_traits uses for coloring:
// keeping them on one predicate keeps halo execution and plan coloring
// in agreement.
template <class... DA>
inline constexpr bool dist_has_inc_v =
    ((!DA::is_gbl && DA::indirect && access_conflicting(DA::access)) || ...);

}  // namespace detail

/// A distributed parallel loop bound to its kernel, iteration set and typed
/// rank-addressable arguments.
///
///   dist::Loop loop(ctx, ResCalc<double>{consts}, "res_calc", edges, args...);
///   for (int it = 0; it < 1000; ++it) loop.run();
///
/// Construction finalizes the context (first use partitions the mesh) and
/// pins the exchange plan, the per-rank bindings and one opv::Loop per rank.
/// Global argument pointers are captured at construction and must outlive
/// the Loop.
template <class Kernel, class... DArgs>
class Loop {
 public:
  static constexpr bool has_inc = detail::dist_has_inc_v<DArgs...>;
  static constexpr bool has_gbl_reduction =
      ((DArgs::is_gbl && DArgs::access != AccessMode::READ) || ...);
  using RankLoop = opv::Loop<Kernel, detail::rank_arg_t<DArgs>...>;

  Loop(DistCtx& ctx, Kernel kernel, std::string name, DistCtx::SetHandle set, DArgs... dargs)
      : ctx_(&ctx), name_(std::move(name)), set_(set) {
    ctx.finalize();
    global_size_ = ctx.spec_.sets[set].size;
    (validate(dargs), ...);
    (collect_read(dargs), ...);
    (collect_write(dargs), ...);
    (collect_ind(dargs), ...);
    setup_pins(std::index_sequence_for<DArgs...>{}, dargs...);
    rank_secs_.assign(static_cast<std::size_t>(ctx.nranks_), 0.0);
    rank_loops_.reserve(static_cast<std::size_t>(ctx.nranks_));
    for (int r = 0; r < ctx.nranks_; ++r)
      build_rank_loop(r, kernel, std::index_sequence_for<DArgs...>{}, dargs...);
    build_phases();
  }

  /// Execute under the given per-rank configuration. The exchange schedule
  /// follows the context's ExchangeMode; loops whose plan cannot legally
  /// overlap always take the Blocking path.
  void run(const ExecConfig& cfg) {
    DistCtx& ctx = *ctx_;
    const ExchangeMode mode = effective_mode();

    std::apply([&](auto&... p) { (reset_pin(p), ...); }, pins_);
    ExecConfig rank_cfg = cfg;
    rank_cfg.collect_stats = false;  // this layer records loop stats itself

    double secs = 0.0;       // compute wall time (both phases)
    double exch_secs = 0.0;  // exchange wall time (begin + wait, or blocking)
    std::int64_t exchanged = 0;

    if (mode == ExchangeMode::Blocking) {
      // 1. Lazy blocking halo refresh of the pinned stale-read set.
      if (!plan_.read_dats.empty()) {
        WallTimer ht;
        exchanged = ctx.refresh_halos(plan_.read_dats);
        exch_secs = ht.seconds();
      }
      // 2. One contiguous run of the pinned per-rank loops; per-rank wall
      //    times are captured for the imbalance accounting.
      WallTimer timer;
      ctx.pool_.run([&](int r) {
        WallTimer rt;
        rank_loops_[static_cast<std::size_t>(r)].run(rank_cfg);
        rank_secs_[static_cast<std::size_t>(r)] = rt.seconds();
      });
      secs = timer.seconds();
    } else {
      // 1. Start (Overlap) or complete (Phased) the refresh of dirty
      //    stale-read dats.
      pending_.clear();
      WallTimer ht;
      if (mode == ExchangeMode::Overlap) ctx.begin_halos(plan_.read_dats, pending_);
      else exchanged = ctx.refresh_halos(plan_.read_dats);
      exch_secs += ht.seconds();

      // 2. Interior elements: touch no halo slot, safe while the exchange
      //    is in flight.
      WallTimer ti;
      ctx.pool_.run([&](int r) {
        WallTimer rt;
        rank_loops_[static_cast<std::size_t>(r)].run_slice(
            rank_cfg, interior_slices_[static_cast<std::size_t>(r)]);
        rank_secs_[static_cast<std::size_t>(r)] = rt.seconds();
      });
      secs += ti.seconds();

      // 3. Every begin is completed by exactly one wait before any boundary
      //    element (which may read halo slots) executes.
      if (mode == ExchangeMode::Overlap) {
        WallTimer wt;
        exchanged = ctx.wait_halos(pending_);
        exch_secs += wt.seconds();
      }

      // 4. Boundary elements (plus the execute halo for INC loops).
      WallTimer tb;
      ctx.pool_.run([&](int r) {
        WallTimer rt;
        rank_loops_[static_cast<std::size_t>(r)].run_slice(
            rank_cfg, boundary_slices_[static_cast<std::size_t>(r)]);
        rank_secs_[static_cast<std::size_t>(r)] += rt.seconds();
      });
      secs += tb.seconds();
    }
    std::apply([&](auto&... p) { (merge_pin(p), ...); }, pins_);

    // Modified datasets now have stale halo copies everywhere.
    ctx.mark_dirty(plan_.write_dats);

    if (cfg.collect_stats) {
      auto& reg = StatsRegistry::instance();
      if (!stats_) stats_ = &reg.slot(name_);
      reg.record(*stats_, secs, global_size_);
      reg.record_ranks(*stats_, rank_secs_.data(), static_cast<int>(rank_secs_.size()));
      if (exchanged > 0) {
        reg.record_exchange(*stats_, exch_secs, exchanged);
        if (!halo_stats_) halo_stats_ = &reg.slot(name_ + "/halo");
        reg.record(*halo_stats_, exch_secs, exchanged);
      }
      // Plan acquisition happens inside the rank loops (full and subset
      // plans alike); flush the freshly accumulated share into this loop's
      // plan column. Safe to read here: the rank pool has joined.
      double plan_total = 0.0;
      for (const RankLoop& rl : rank_loops_) plan_total += rl.plan_build_seconds();
      if (plan_total > plan_secs_reported_) {
        reg.record_plan(*stats_, plan_total - plan_secs_reported_);
        plan_secs_reported_ = plan_total;
      }
    }
  }

  /// Execute under the context's CURRENT configuration (mutations through
  /// DistCtx::config() take effect, as they always did for DistCtx::loop).
  void run() { run(ctx_->cfg_); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int nranks() const { return static_cast<int>(rank_loops_.size()); }

  /// The pinned halo-exchange schedule — one object for the Loop's lifetime
  /// (tests verify pinning through its address and contents). Includes the
  /// per-rank interior/boundary classification when the loop can overlap.
  [[nodiscard]] const ExchangePlan& exchange_plan() const { return plan_; }

  /// The schedule the next run() will actually use: the context's
  /// ExchangeMode, demoted to Blocking when the plan cannot legally
  /// overlap.
  [[nodiscard]] ExchangeMode effective_mode() const {
    return plan_.can_overlap ? ctx_->exchange_mode() : ExchangeMode::Blocking;
  }

  /// Fraction of owned elements (across all ranks) classified interior —
  /// the share of work available to hide the exchange behind (0 when the
  /// loop is not phased).
  [[nodiscard]] double interior_fraction() const {
    if (!plan_.can_overlap) return 0.0;
    double interior = 0.0, owned = 0.0;
    for (int r = 0; r < ctx_->nranks_; ++r) {
      interior += static_cast<double>(plan_.phases[static_cast<std::size_t>(r)].interior.size());
      owned += static_cast<double>(ctx_->part_->set(r, set_).size());
    }
    return owned > 0.0 ? interior / owned : 0.0;
  }

  /// The pinned per-rank engine handle (exposes the rank's coloring plan).
  [[nodiscard]] RankLoop& rank_loop(int r) {
    return rank_loops_[static_cast<std::size_t>(r)];
  }

  /// Per-rank wall seconds of the most recent run().
  [[nodiscard]] const std::vector<double>& rank_seconds() const { return rank_secs_; }

 private:
  // ---- construction-time derivation ----------------------------------------

  template <class T, AccessMode A, int Dim, bool Ind>
  void validate(const DistArgDat<T, A, Dim, Ind>& a) const {
    const GlobalSpec& spec = ctx_->spec_;
    if constexpr (Ind) {
      OPV_REQUIRE(spec.maps[a.map].from == set_,
                  "dist::Loop '" << name_ << "': map '" << spec.maps[a.map].name
                                 << "' is not from the iteration set '" << spec.sets[set_].name
                                 << "'");
    } else {
      OPV_REQUIRE(ctx_->dats_[a.dat]->set == set_,
                  "dist::Loop '" << name_ << "': direct dat '" << ctx_->dats_[a.dat]->name
                                 << "' does not live on the iteration set '"
                                 << spec.sets[set_].name << "'");
    }
  }
  template <class T, AccessMode A>
  void validate(const DistArgGbl<T, A>&) const {}

  /// Which datasets must have fresh halos before this loop: indirect reads
  /// always; direct reads too when the loop redundantly executes the halo
  /// (the kernel then consumes halo-element data to build owned increments).
  template <class DA>
  void collect_read(const DA& a) {
    if constexpr (!DA::is_gbl) {
      constexpr AccessMode A = DA::access;
      if constexpr (DA::indirect ? access_reads(A)
                                 : (has_inc && (access_reads(A) || A == AccessMode::INC))) {
        if (std::find(plan_.read_dats.begin(), plan_.read_dats.end(), a.dat) ==
            plan_.read_dats.end())
          plan_.read_dats.push_back(a.dat);
      }
    }
  }

  template <class DA>
  void collect_write(const DA& a) {
    if constexpr (!DA::is_gbl && access_writes(DA::access)) {
      if (std::find(plan_.write_dats.begin(), plan_.write_dats.end(), a.dat) ==
          plan_.write_dats.end())
        plan_.write_dats.push_back(a.dat);
    }
  }

  /// Indirect references (map, slot, target set) — the classification walks
  /// these to decide which owned elements can reach a halo slot.
  struct IndRef {
    int map = -1;
    int idx = -1;
    int to = -1;
  };
  template <class DA>
  void collect_ind(const DA& a) {
    if constexpr (!DA::is_gbl && DA::indirect)
      ind_refs_.push_back({a.map, a.idx, ctx_->spec_.maps[a.map].to});
  }

  /// Derive the pinned interior/boundary classification (paper section
  /// 6.5). An owned element is interior iff every indirect argument maps it
  /// to an owned slot of the target set — it then neither reads values the
  /// exchange delivers nor touches slots the exchange writes, so it can run
  /// while the exchange is in flight. Everything else (including the
  /// execute halo of INC loops) is boundary. Loops with nothing to exchange
  /// or with a dat both read stale and written stay unphased.
  void build_phases() {
    bool disjoint = true;
    for (int d : plan_.read_dats)
      disjoint &= std::find(plan_.write_dats.begin(), plan_.write_dats.end(), d) ==
                  plan_.write_dats.end();
    // has_inc + global reduction stays unphased: the blocking path's
    // per-rank engine guard (exec_size == size) is what correctly rejects
    // halo-executed reductions, which would double-count across ranks.
    plan_.can_overlap =
        !plan_.read_dats.empty() && disjoint && !(has_inc && has_gbl_reduction);
    if (!plan_.can_overlap) return;

    const DistCtx& ctx = *ctx_;
    plan_.phases.resize(static_cast<std::size_t>(ctx.nranks_));
    interior_slices_.reserve(static_cast<std::size_t>(ctx.nranks_));
    boundary_slices_.reserve(static_cast<std::size_t>(ctx.nranks_));
    for (int r = 0; r < ctx.nranks_; ++r) {
      const Set& iter = ctx.part_->set(r, set_);
      const idx_t nowned = iter.size();
      const idx_t nexec = has_inc ? iter.exec_size() : nowned;
      RankPhases& ph = plan_.phases[static_cast<std::size_t>(r)];
      for (idx_t e = 0; e < nowned; ++e) {
        bool interior = true;
        for (const IndRef& ref : ind_refs_) {
          if (ctx.part_->map(r, ref.map)(e, ref.idx) >= ctx.part_->set(r, ref.to).size()) {
            interior = false;
            break;
          }
        }
        (interior ? ph.interior : ph.boundary).push_back(e);
      }
      for (idx_t e = nowned; e < nexec; ++e) ph.boundary.push_back(e);
      RankLoop& rl = rank_loops_[static_cast<std::size_t>(r)];
      interior_slices_.push_back(rl.make_slice(ph.interior));
      boundary_slices_.push_back(rl.make_slice(ph.boundary));
    }
  }

  template <std::size_t... Is>
  void setup_pins(std::index_sequence<Is...>, const DArgs&... dargs) {
    (setup_pin(std::get<Is>(pins_), dargs), ...);
  }
  template <class T, AccessMode A, int Dim, bool Ind>
  void setup_pin(detail::NoPin&, const DistArgDat<T, A, Dim, Ind>&) {}
  template <class T, AccessMode A>
  void setup_pin(detail::GblPin<T, A>& g, const DistArgGbl<T, A>& a) {
    g.target = a.ptr;
    g.dim = a.dim;
    g.buf.assign(static_cast<std::size_t>(ctx_->nranks_) * a.dim, T{});
  }

  template <std::size_t... Is>
  void build_rank_loop(int r, const Kernel& kernel, std::index_sequence<Is...>,
                       const DArgs&... dargs) {
    rank_loops_.emplace_back(kernel, name_, ctx_->part_->set(r, set_),
                             bind_rank(r, dargs, std::get<Is>(pins_))...);
  }
  template <class T, AccessMode A, int Dim, bool Ind>
  auto bind_rank(int r, const DistArgDat<T, A, Dim, Ind>& a, detail::NoPin&) {
    Dat<T>& d = ctx_->template entry<T>(a.dat).rank[static_cast<std::size_t>(r)];
    if constexpr (Ind) return opv::arg<A, Dim>(d, a.idx, ctx_->part_->map(r, a.map));
    else return opv::arg<A, Dim>(d);
  }
  template <class T, AccessMode A>
  auto bind_rank(int r, const DistArgGbl<T, A>& a, detail::GblPin<T, A>& g) {
    return opv::arg_gbl<A>(g.buf.data() + static_cast<std::size_t>(r) * a.dim, a.dim);
  }

  // ---- per-run global scratch ----------------------------------------------

  void reset_pin(detail::NoPin&) {}
  template <class T, AccessMode A>
  void reset_pin(detail::GblPin<T, A>& g) {
    for (int r = 0; r < ctx_->nranks_; ++r)
      for (int c = 0; c < g.dim; ++c) {
        T v{};
        if constexpr (A == AccessMode::READ) v = g.target[c];
        else if constexpr (A == AccessMode::INC) v = T(0);
        else if constexpr (A == AccessMode::MIN) v = std::numeric_limits<T>::max();
        else v = std::numeric_limits<T>::lowest();
        g.buf[static_cast<std::size_t>(r) * g.dim + c] = v;
      }
  }

  void merge_pin(detail::NoPin&) {}
  template <class T, AccessMode A>
  void merge_pin(detail::GblPin<T, A>& g) {
    if constexpr (A == AccessMode::READ) return;
    for (int r = 0; r < ctx_->nranks_; ++r)
      for (int c = 0; c < g.dim; ++c) {
        const T v = g.buf[static_cast<std::size_t>(r) * g.dim + c];
        if constexpr (A == AccessMode::INC) g.target[c] += v;
        else if constexpr (A == AccessMode::MIN)
          g.target[c] = g.target[c] < v ? g.target[c] : v;
        else g.target[c] = g.target[c] > v ? g.target[c] : v;
      }
  }

  DistCtx* ctx_;
  std::string name_;
  DistCtx::SetHandle set_;
  idx_t global_size_ = 0;
  ExchangePlan plan_;
  std::vector<IndRef> ind_refs_;
  std::tuple<detail::pin_t<DArgs>...> pins_;
  std::vector<RankLoop> rank_loops_;
  /// Per-rank pinned phase schedules (empty unless plan_.can_overlap).
  std::vector<typename RankLoop::Slice> interior_slices_;
  std::vector<typename RankLoop::Slice> boundary_slices_;
  std::vector<int> pending_;  ///< dats with an exchange in flight (reused)
  std::vector<double> rank_secs_;
  LoopRecord* stats_ = nullptr;
  LoopRecord* halo_stats_ = nullptr;
  double plan_secs_reported_ = 0.0;  ///< rank-loop plan share already flushed
};

template <class Kernel, class... DArgs>
Loop(DistCtx&, Kernel, std::string, DistCtx::SetHandle, DArgs...) -> Loop<Kernel, DArgs...>;

// ---- the one-shot wrapper ---------------------------------------------------

/// Mirrors opv::par_loop over opv::Loop: identical call shape, throwaway
/// handle. The nranks engine handles are built serially on the caller
/// thread, and phased loops additionally re-derive the interior/boundary
/// classification and per-rank subset plans (deliberately uncached — they
/// are handle state, so the wrapper stays bitwise-identical to handle
/// construction + run). This path's per-call overhead grows with the rank
/// count; steady-state iteration should construct the Loop once (the
/// dispatch ablation bench measures the gap).
template <class Kernel, class... DArgs>
void DistCtx::loop(Kernel kernel, const char* name, SetHandle set, DArgs... dargs) {
  Loop<Kernel, DArgs...> l(*this, std::move(kernel), name, set, dargs...);
  l.run();
}

/// The persistent-handle factory shared with LocalCtx::make_loop: a driver
/// templated over the context concept builds its handles once through
/// `ctx.make_loop(...)` and runs them every timestep, on either context.
template <class Kernel, class... DArgs>
Loop<Kernel, DArgs...> DistCtx::make_loop(Kernel kernel, const char* name, SetHandle set,
                                          DArgs... dargs) {
  return Loop<Kernel, DArgs...>(*this, std::move(kernel), name, set, dargs...);
}

}  // namespace opv::dist
