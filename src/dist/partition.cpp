#include "dist/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace opv::dist {

namespace {

/// Recursively bisect `ids` (indices into coords) into nparts parts starting
/// at part id `base`, splitting along the longest axis of the ndims-D
/// bounding box with counts proportional to the part counts on each side.
void rcb_split(const double* coords, int ndims, std::vector<idx_t>& ids, idx_t begin, idx_t end,
               int nparts, int base, aligned_vector<int>& owner) {
  if (nparts == 1) {
    for (idx_t i = begin; i < end; ++i) owner[ids[i]] = base;
    return;
  }
  const int nl = (nparts + 1) / 2;
  const int nr = nparts - nl;
  const idx_t n = end - begin;
  const idx_t k = static_cast<idx_t>(
      std::llround(static_cast<double>(n) * nl / static_cast<double>(nparts)));

  // Longest axis of the true ndims-dimensional bounding box.
  double lo[3] = {1e300, 1e300, 1e300};
  double hi[3] = {-1e300, -1e300, -1e300};
  for (idx_t i = begin; i < end; ++i) {
    const double* p = coords + static_cast<std::size_t>(ndims) * static_cast<std::size_t>(ids[i]);
    for (int a = 0; a < ndims; ++a) {
      lo[a] = std::min(lo[a], p[a]);
      hi[a] = std::max(hi[a], p[a]);
    }
  }
  int axis = 0;
  for (int a = 1; a < ndims; ++a)
    if (hi[a] - lo[a] > hi[axis] - lo[axis]) axis = a;

  std::nth_element(ids.begin() + begin, ids.begin() + begin + k, ids.begin() + end,
                   [&](idx_t a, idx_t b) {
                     const double ca = coords[ndims * static_cast<std::size_t>(a) + axis];
                     const double cb = coords[ndims * static_cast<std::size_t>(b) + axis];
                     return ca != cb ? ca < cb : a < b;  // deterministic tie-break
                   });

  rcb_split(coords, ndims, ids, begin, begin + k, nl, base, owner);
  rcb_split(coords, ndims, ids, begin + k, end, nr, base + nl, owner);
}

}  // namespace

aligned_vector<int> partition_rcb(const double* coords, idx_t n, int nparts, int ndims) {
  OPV_REQUIRE(nparts >= 1, "partition_rcb: nparts must be >= 1, got " << nparts);
  OPV_REQUIRE(n >= 0, "partition_rcb: negative element count");
  OPV_REQUIRE(ndims == 2 || ndims == 3, "partition_rcb: ndims must be 2 or 3, got " << ndims);
  aligned_vector<int> owner(static_cast<std::size_t>(n), 0);
  if (n == 0 || nparts == 1) return owner;
  std::vector<idx_t> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), idx_t{0});
  rcb_split(coords, ndims, ids, 0, n, nparts, 0, owner);
  return owner;
}

aligned_vector<int> partition_block(idx_t n, int nparts) {
  OPV_REQUIRE(nparts >= 1, "partition_block: nparts must be >= 1, got " << nparts);
  aligned_vector<int> owner(static_cast<std::size_t>(n), 0);
  if (n == 0) return owner;
  const idx_t chunk = (n + nparts - 1) / nparts;
  for (idx_t i = 0; i < n; ++i) owner[i] = static_cast<int>(i / chunk);
  return owner;
}

std::vector<idx_t> part_sizes(const aligned_vector<int>& owner, int nparts) {
  std::vector<idx_t> sizes(static_cast<std::size_t>(std::max(nparts, 0)), 0);
  for (int r : owner) {
    OPV_REQUIRE(r >= 0 && r < nparts, "part_sizes: owner " << r << " outside [0," << nparts << ")");
    ++sizes[r];
  }
  return sizes;
}

}  // namespace opv::dist
