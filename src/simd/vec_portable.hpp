// Portable (ISA-independent) implementation of the fixed-width vector
// classes described in the paper's Figure 4. Every operation is a plain
// element loop; GCC/Clang typically lower these to vector instructions, but
// the semantics never depend on it. The intrinsic specializations in
// vec_avx2.hpp / vec_avx512.hpp implement the identical interface, and the
// test suite asserts bit-for-bit (or ULP-level) agreement between the two.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <type_traits>

namespace opv::simd {

/// Portable lane mask: one bool per lane.
template <class T, int W>
struct MaskP {
  using value_type = T;
  static constexpr int width = W;
  bool m[W];

  MaskP() {
    for (int i = 0; i < W; ++i) m[i] = false;
  }
  explicit MaskP(bool b) {
    for (int i = 0; i < W; ++i) m[i] = b;
  }
  bool operator[](int i) const { return m[i]; }

  friend MaskP operator&(MaskP a, MaskP b) {
    MaskP r;
    for (int i = 0; i < W; ++i) r.m[i] = a.m[i] && b.m[i];
    return r;
  }
  friend MaskP operator|(MaskP a, MaskP b) {
    MaskP r;
    for (int i = 0; i < W; ++i) r.m[i] = a.m[i] || b.m[i];
    return r;
  }
  friend MaskP operator^(MaskP a, MaskP b) {
    MaskP r;
    for (int i = 0; i < W; ++i) r.m[i] = a.m[i] != b.m[i];
    return r;
  }
  friend MaskP operator!(MaskP a) {
    MaskP r;
    for (int i = 0; i < W; ++i) r.m[i] = !a.m[i];
    return r;
  }
};

template <class T, int W>
inline bool any(MaskP<T, W> m) {
  for (int i = 0; i < W; ++i)
    if (m.m[i]) return true;
  return false;
}
template <class T, int W>
inline bool all(MaskP<T, W> m) {
  for (int i = 0; i < W; ++i)
    if (!m.m[i]) return false;
  return true;
}
/// Bitmask of set lanes (lane i -> bit i); used by host-side lane loops.
template <class T, int W>
inline unsigned to_bits(MaskP<T, W> m) {
  unsigned b = 0;
  for (int i = 0; i < W; ++i)
    if (m.m[i]) b |= 1u << i;
  return b;
}

template <class T, int W>
struct VecP;

/// Convert a mask between element types of the same width (e.g. the result
/// of an int32 comparison driving a select() on doubles).
template <class VTo, class T, int W>
inline typename VTo::mask_type mask_cast(MaskP<T, W> m) {
  static_assert(VTo::width == W, "mask width mismatch");
  typename VTo::mask_type r;
  for (int i = 0; i < W; ++i) r.m[i] = m.m[i];
  return r;
}

/// Portable fixed-width vector of W lanes of T.
template <class T, int W>
struct VecP {
  static_assert(W > 0 && (W & (W - 1)) == 0, "width must be a power of two");
  using value_type = T;
  using mask_type = MaskP<T, W>;
  using index_type = VecP<std::int32_t, W>;
  static constexpr int width = W;

  T v[W];

  VecP() {
    for (int i = 0; i < W; ++i) v[i] = T(0);
  }
  VecP(T x) {  // NOLINT(google-explicit-constructor) broadcast, mirrors dvec.h
    for (int i = 0; i < W; ++i) v[i] = x;
  }

  static VecP loadu(const T* p) {
    VecP r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i];
    return r;
  }
  static VecP loada(const T* p) { return loadu(p); }
  /// Mapping-driven gather: r[i] = base[idx[i]]. Accepts any index vector
  /// with lane access (so a portable value vector can pair with an
  /// intrinsic index vector when only one of the two has an ISA type).
  template <class IVec>
  static VecP gather(const T* base, IVec idx) {
    VecP r;
    for (int i = 0; i < W; ++i) r.v[i] = base[idx[i]];
    return r;
  }
  /// Masked gather: inactive lanes take `fallback` lanes, no memory access.
  template <class IVec, class M>
  static VecP gather_masked(const T* base, IVec idx, M m, VecP fallback) {
    VecP r;
    for (int i = 0; i < W; ++i) r.v[i] = m[i] ? base[idx[i]] : fallback.v[i];
    return r;
  }
  /// Strided load: r[i] = p[i*stride] (direct AoS component access).
  static VecP strided(const T* p, int stride) {
    VecP r;
    for (int i = 0; i < W; ++i) r.v[i] = p[i * stride];
    return r;
  }
  /// Lane-index vector {start, start+1, ...}.
  static VecP iota(T start = T(0)) {
    VecP r;
    for (int i = 0; i < W; ++i) r.v[i] = start + T(i);
    return r;
  }

  T operator[](int i) const { return v[i]; }
  void set_lane(int i, T x) { v[i] = x; }

  std::array<T, W> to_array() const {
    std::array<T, W> a;
    for (int i = 0; i < W; ++i) a[i] = v[i];
    return a;
  }

  VecP& operator+=(VecP o) {
    for (int i = 0; i < W; ++i) v[i] += o.v[i];
    return *this;
  }
  VecP& operator-=(VecP o) {
    for (int i = 0; i < W; ++i) v[i] -= o.v[i];
    return *this;
  }
  VecP& operator*=(VecP o) {
    for (int i = 0; i < W; ++i) v[i] *= o.v[i];
    return *this;
  }
  VecP& operator/=(VecP o) {
    for (int i = 0; i < W; ++i) v[i] /= o.v[i];
    return *this;
  }

  friend VecP operator+(VecP a, VecP b) { return a += b; }
  friend VecP operator-(VecP a, VecP b) { return a -= b; }
  friend VecP operator*(VecP a, VecP b) { return a *= b; }
  friend VecP operator/(VecP a, VecP b) { return a /= b; }
  /// Lane-wise arithmetic shift right (integer lanes only; AoSoA block-index
  /// math in the engine's gather paths). Instantiated only when called.
  friend VecP operator>>(VecP a, int s) {
    VecP r;
    for (int i = 0; i < W; ++i) r.v[i] = a.v[i] >> s;
    return r;
  }
  friend VecP operator-(VecP a) {
    VecP r;
    for (int i = 0; i < W; ++i) r.v[i] = -a.v[i];
    return r;
  }

  friend mask_type operator<(VecP a, VecP b) {
    mask_type r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] < b.v[i];
    return r;
  }
  friend mask_type operator<=(VecP a, VecP b) {
    mask_type r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] <= b.v[i];
    return r;
  }
  friend mask_type operator>(VecP a, VecP b) { return b < a; }
  friend mask_type operator>=(VecP a, VecP b) { return b <= a; }
  friend mask_type operator==(VecP a, VecP b) {
    mask_type r;
    for (int i = 0; i < W; ++i) r.m[i] = a.v[i] == b.v[i];
    return r;
  }
  friend mask_type operator!=(VecP a, VecP b) { return !(a == b); }
};

// ---- stores -----------------------------------------------------------

template <class T, int W>
inline void storeu(T* p, VecP<T, W> a) {
  for (int i = 0; i < W; ++i) p[i] = a.v[i];
}
template <class T, int W>
inline void storea(T* p, VecP<T, W> a) {
  storeu(p, a);
}
/// Strided store: p[i*stride] = a[i].
template <class T, int W>
inline void store_strided(T* p, int stride, VecP<T, W> a) {
  for (int i = 0; i < W; ++i) p[i * stride] = a.v[i];
}
/// Serial scatter (assignment). Safe for duplicate indices: later lanes win,
/// matching sequential execution order.
template <class T, int W, class IVec>
inline void scatter_serial(T* base, IVec idx, VecP<T, W> a) {
  for (int i = 0; i < W; ++i) base[idx[i]] = a.v[i];
}
/// Serial scatter-add. Safe for duplicate indices (the paper's "sequentially
/// scattering data out of the vector register" for the two-level coloring).
template <class T, int W, class IVec>
inline void scatter_add_serial(T* base, IVec idx, VecP<T, W> a) {
  for (int i = 0; i < W; ++i) base[idx[i]] += a.v[i];
}
/// Hardware-style scatter-add (gather + add + scatter). ONLY legal when all
/// lane indices are distinct — guaranteed by the full/block permute
/// colorings. Duplicate lanes lose updates, exactly like a real scatter.
template <class T, int W, class IVec>
inline void scatter_add_hw(T* base, IVec idx, VecP<T, W> a) {
  VecP<T, W> cur = VecP<T, W>::gather(base, idx);
  cur += a;
  scatter_serial(base, idx, cur);
}
/// Masked serial scatter-add: only active lanes update memory.
template <class T, int W, class IVec, class M>
inline void scatter_add_serial_masked(T* base, IVec idx, VecP<T, W> a, M m) {
  for (int i = 0; i < W; ++i)
    if (m[i]) base[idx[i]] += a.v[i];
}

// ---- select & math ----------------------------------------------------

template <class T, int W>
inline VecP<T, W> select(MaskP<T, W> m, VecP<T, W> a, VecP<T, W> b) {
  VecP<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = m.m[i] ? a.v[i] : b.v[i];
  return r;
}

template <class T, int W>
inline VecP<T, W> min(VecP<T, W> a, VecP<T, W> b) {
  VecP<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return r;
}
template <class T, int W>
inline VecP<T, W> max(VecP<T, W> a, VecP<T, W> b) {
  VecP<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
template <class T, int W>
inline VecP<T, W> abs(VecP<T, W> a) {
  VecP<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] < T(0) ? -a.v[i] : a.v[i];
  return r;
}
template <class T, int W>
inline VecP<T, W> sqrt(VecP<T, W> a) {
  VecP<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = std::sqrt(a.v[i]);
  return r;
}
/// Fused (here: contracted by the compiler if it wants) multiply-add a*b+c.
template <class T, int W>
inline VecP<T, W> fma(VecP<T, W> a, VecP<T, W> b, VecP<T, W> c) {
  VecP<T, W> r;
  for (int i = 0; i < W; ++i) r.v[i] = a.v[i] * b.v[i] + c.v[i];
  return r;
}

// ---- horizontal reductions --------------------------------------------

template <class T, int W>
inline T hsum(VecP<T, W> a) {
  T s = a.v[0];
  for (int i = 1; i < W; ++i) s += a.v[i];
  return s;
}
template <class T, int W>
inline T hmin(VecP<T, W> a) {
  T s = a.v[0];
  for (int i = 1; i < W; ++i) s = a.v[i] < s ? a.v[i] : s;
  return s;
}
template <class T, int W>
inline T hmax(VecP<T, W> a) {
  T s = a.v[0];
  for (int i = 1; i < W; ++i) s = a.v[i] > s ? a.v[i] : s;
  return s;
}

/// Mask with the first n lanes active (loop-tail handling).
template <class V>
inline typename V::mask_type tail_mask_portable(int n) {
  typename V::mask_type m;
  for (int i = 0; i < V::width; ++i) m.m[i] = i < n;
  return m;
}

}  // namespace opv::simd
