// Umbrella header for the SIMD layer.
//
// The central idea (paper section 4.2): a user kernel is written once,
// templated over its value type T. Instantiated with T = double/float it is
// the scalar kernel; instantiated with T = Vec<double,W> the same source
// operates on packed vector registers, with gathers/scatters supplied by the
// par_loop engine and branches expressed via select(). This header provides
//   * Vec<T,W>: portable vectors with AVX2/AVX-512 specializations,
//   * scalar overloads of select/min/max/abs/sqrt/fma/h* so that the same
//     kernel source compiles for scalar T,
//   * vec_traits<T> used by the engine to reason about lane counts.
#pragma once

#include <cmath>
#include <cstdint>
#include <type_traits>

#include "simd/vec_portable.hpp"
#if defined(__AVX2__)
#include "simd/vec_avx2.hpp"
#endif
#if defined(__AVX512F__) && defined(__AVX2__)
#include "simd/vec_avx512.hpp"
#endif

namespace opv::simd {

// ---- compile-time capability flags ----------------------------------------

#if defined(__AVX512F__) && defined(__AVX2__)
inline constexpr bool kHaveAvx512 = true;
#else
inline constexpr bool kHaveAvx512 = false;
#endif
#if defined(__AVX2__)
inline constexpr bool kHaveAvx2 = true;
#else
inline constexpr bool kHaveAvx2 = false;
#endif

/// Widest compiled-in lane count for a scalar type.
template <class T>
inline constexpr int max_lanes = kHaveAvx512 ? (64 / static_cast<int>(sizeof(T)))
                                             : (kHaveAvx2 ? (32 / static_cast<int>(sizeof(T)))
                                                          : 4);

// ---- Vec<T,W> alias: intrinsic type when available, portable otherwise ----

template <class T, int W>
struct vec_select {
  using type = VecP<T, W>;
};
#if defined(__AVX2__)
template <>
struct vec_select<double, 4> {
  using type = F64x4;
};
template <>
struct vec_select<float, 8> {
  using type = F32x8;
};
template <>
struct vec_select<std::int32_t, 4> {
  using type = I32x4;
};
template <>
struct vec_select<std::int32_t, 8> {
  using type = I32x8;
};
#endif
#if defined(__AVX512F__) && defined(__AVX2__)
template <>
struct vec_select<double, 8> {
  using type = F64x8;
};
template <>
struct vec_select<float, 16> {
  using type = F32x16;
};
template <>
struct vec_select<std::int32_t, 16> {
  using type = I32x16;
};
#endif

/// The best available vector of W lanes of T.
template <class T, int W>
using Vec = typename vec_select<T, W>::type;

// ---- scalar overloads so width-generic kernels compile with T=double ------

inline double select(bool c, double a, double b) { return c ? a : b; }
inline float select(bool c, float a, float b) { return c ? a : b; }
inline std::int32_t select(bool c, std::int32_t a, std::int32_t b) { return c ? a : b; }

inline double min(double a, double b) { return a < b ? a : b; }
inline double max(double a, double b) { return a > b ? a : b; }
inline float min(float a, float b) { return a < b ? a : b; }
inline float max(float a, float b) { return a > b ? a : b; }
inline std::int32_t min(std::int32_t a, std::int32_t b) { return a < b ? a : b; }
inline std::int32_t max(std::int32_t a, std::int32_t b) { return a > b ? a : b; }

inline double abs(double a) { return std::fabs(a); }
inline float abs(float a) { return std::fabs(a); }
inline double sqrt(double a) { return std::sqrt(a); }
inline float sqrt(float a) { return std::sqrt(a); }

/// Scalar "fma" is a plain contraction (a*b+c); the vector forms use real
/// FMA instructions. Kernels must tolerate the (tiny) rounding difference.
inline double fma(double a, double b, double c) { return a * b + c; }
inline float fma(float a, float b, float c) { return a * b + c; }

inline double hsum(double a) { return a; }
inline float hsum(float a) { return a; }
inline double hmin(double a) { return a; }
inline float hmin(float a) { return a; }
inline double hmax(double a) { return a; }
inline float hmax(float a) { return a; }

inline bool any(bool m) { return m; }
inline bool all(bool m) { return m; }

// ---- vec_traits -------------------------------------------------------------

/// Traits describing a kernel value type: scalar element, lane count, the
/// matching index vector and mask types. Primary template = scalar types.
template <class T, class = void>
struct vec_traits {
  static_assert(std::is_arithmetic_v<T>, "vec_traits: unsupported type");
  using scalar = T;
  using index = std::int32_t;
  using mask = bool;
  static constexpr int lanes = 1;
};

/// Specialization for vector types (anything exposing ::width).
template <class V>
struct vec_traits<V, std::void_t<decltype(V::width), typename V::value_type>> {
  using scalar = typename V::value_type;
  using index = typename V::index_type;
  using mask = typename V::mask_type;
  static constexpr int lanes = V::width;
};

/// Lane count of a kernel value type (1 for scalars).
template <class T>
inline constexpr int lanes_of = vec_traits<T>::lanes;

/// The vector (or scalar) type holding elements of scalar type S matching
/// the lane count of kernel value type T. Example: T=Vec<double,8>,
/// S=int32_t -> Vec<int32_t,8>; T=double, S=int32_t -> int32_t.
template <class S, class T>
using rebind_t =
    std::conditional_t<lanes_of<T> == 1, S, Vec<S, lanes_of<T>>>;

// ---- int -> real lane conversion (for kernels branching on int data) -------

template <class V, class = void>
struct RealConvert;

template <class T>
struct RealConvert<T, std::enable_if_t<std::is_floating_point_v<T>>> {
  static T from(std::int32_t i) { return static_cast<T>(i); }
};
template <class T, int W>
struct RealConvert<VecP<T, W>, std::enable_if_t<std::is_floating_point_v<T>>> {
  template <class IVec>
  static VecP<T, W> from(IVec i) {
    VecP<T, W> r;
    for (int l = 0; l < W; ++l) r.v[l] = static_cast<T>(i[l]);
    return r;
  }
};
#if defined(__AVX2__)
template <>
struct RealConvert<F64x4> {
  static F64x4 from(I32x4 i) { return F64x4{_mm256_cvtepi32_pd(i.v)}; }
};
template <>
struct RealConvert<F32x8> {
  static F32x8 from(I32x8 i) { return F32x8{_mm256_cvtepi32_ps(i.v)}; }
};
#endif
#if defined(__AVX512F__) && defined(__AVX2__)
template <>
struct RealConvert<F64x8> {
  static F64x8 from(I32x8 i) { return F64x8{_mm512_cvtepi32_pd(i.v)}; }
};
template <>
struct RealConvert<F32x16> {
  static F32x16 from(I32x16 i) { return F32x16{_mm512_cvtepi32_ps(i.v)}; }
};
#endif

/// Convert lane-wise int32 data to the kernel's real value type so that
/// integer-driven branches can be expressed as real-valued select()s.
/// The index-vector type is deduced: it may be the intrinsic index type even
/// when V itself is a portable vector (exotic width combinations).
template <class V, class IVec>
inline V to_real(IVec i) {
  return RealConvert<V>::from(i);
}

// ---- mask conversion: index-vector comparison mask -> value mask ------------
// Used by the SIMT backend's colored increments: element colors are compared
// as int vectors, the resulting mask drives masked scatters of value vectors.

template <class V, class = void>
struct MaskConvert;

template <class T>
struct MaskConvert<T, std::enable_if_t<std::is_arithmetic_v<T>>> {
  static bool from(bool m) { return m; }
};
template <class T, int W>
struct MaskConvert<VecP<T, W>> {
  template <class M>
  static MaskP<T, W> from(M m) {
    MaskP<T, W> r;
    for (int l = 0; l < W; ++l) r.m[l] = m[l];
    return r;
  }
};
#if defined(__AVX2__)
template <>
struct MaskConvert<F64x4> {
  static MaskF64x4 from(MaskI32x4 m) { return mask_to_f64(m); }
};
template <>
struct MaskConvert<F32x8> {
  static MaskF32x8 from(MaskI32x8 m) { return mask_to_f32(m); }
};
template <>
struct MaskConvert<I32x4> {
  static MaskI32x4 from(MaskI32x4 m) { return m; }
};
template <>
struct MaskConvert<I32x8> {
  static MaskI32x8 from(MaskI32x8 m) { return m; }
};
#endif
#if defined(__AVX512F__) && defined(__AVX2__)
template <>
struct MaskConvert<F64x8> {
  static MaskK8 from(MaskI32x8 m) { return mask_to_f64x8(m); }
};
template <>
struct MaskConvert<F32x16> {
  static MaskK16 from(MaskK16 m) { return m; }
};
template <>
struct MaskConvert<I32x16> {
  static MaskK16 from(MaskK16 m) { return m; }
};
#endif

}  // namespace opv::simd

/// Put this at the top of every width-generic kernel body. Function-scope
/// using-declarations make unqualified min/max/abs/sqrt/fma/select resolve
/// ONLY to the opv::simd overload set (they hide ::abs(int) and friends, so
/// a scalar instantiation cannot silently pick a libc integer overload).
#define OPV_SIMD_MATH_USING                                          \
  using ::opv::simd::select;                                         \
  using ::opv::simd::min;                                            \
  using ::opv::simd::max;                                            \
  using ::opv::simd::abs;                                            \
  using ::opv::simd::sqrt;                                           \
  using ::opv::simd::fma;                                            \
  using ::opv::simd::any;                                            \
  using ::opv::simd::all;                                            \
  using ::opv::simd::hsum;                                           \
  using ::opv::simd::hmin;                                           \
  using ::opv::simd::hmax;                                           \
  using ::opv::simd::to_real
