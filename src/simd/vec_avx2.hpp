// AVX2 (256-bit) specializations of the vector classes — the reproduction of
// the paper's F64vec4/F32vec8 wrapper classes built on dvec.h (Figure 4a).
// AVX2 has hardware *gather* but no scatter; scatter_add_hw is therefore an
// extract-based emulation, matching the paper's observation that the permute
// colorings only pay off on hardware with real scatter (IMCI / AVX-512).
#pragma once

#include <array>
#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>

#include "simd/vec_portable.hpp"

namespace opv::simd {

struct F64x4;
struct F32x8;
struct I32x4;
struct I32x8;

// ---- masks -------------------------------------------------------------

/// 4-lane double mask held as an all-ones/all-zeros __m256d.
struct MaskF64x4 {
  using value_type = double;
  static constexpr int width = 4;
  __m256d m;
  MaskF64x4() : m(_mm256_setzero_pd()) {}
  explicit MaskF64x4(__m256d r) : m(r) {}
  friend MaskF64x4 operator&(MaskF64x4 a, MaskF64x4 b) {
    return MaskF64x4{_mm256_and_pd(a.m, b.m)};
  }
  friend MaskF64x4 operator|(MaskF64x4 a, MaskF64x4 b) {
    return MaskF64x4{_mm256_or_pd(a.m, b.m)};
  }
  friend MaskF64x4 operator^(MaskF64x4 a, MaskF64x4 b) {
    return MaskF64x4{_mm256_xor_pd(a.m, b.m)};
  }
  friend MaskF64x4 operator!(MaskF64x4 a) {
    return MaskF64x4{_mm256_xor_pd(a.m, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)))};
  }
  bool operator[](int i) const { return (_mm256_movemask_pd(m) >> i) & 1; }
};
inline unsigned to_bits(MaskF64x4 a) { return static_cast<unsigned>(_mm256_movemask_pd(a.m)); }
inline bool any(MaskF64x4 a) { return to_bits(a) != 0; }
inline bool all(MaskF64x4 a) { return to_bits(a) == 0xFu; }

/// 8-lane float mask held as an all-ones/all-zeros __m256.
struct MaskF32x8 {
  using value_type = float;
  static constexpr int width = 8;
  __m256 m;
  MaskF32x8() : m(_mm256_setzero_ps()) {}
  explicit MaskF32x8(__m256 r) : m(r) {}
  friend MaskF32x8 operator&(MaskF32x8 a, MaskF32x8 b) {
    return MaskF32x8{_mm256_and_ps(a.m, b.m)};
  }
  friend MaskF32x8 operator|(MaskF32x8 a, MaskF32x8 b) {
    return MaskF32x8{_mm256_or_ps(a.m, b.m)};
  }
  friend MaskF32x8 operator^(MaskF32x8 a, MaskF32x8 b) {
    return MaskF32x8{_mm256_xor_ps(a.m, b.m)};
  }
  friend MaskF32x8 operator!(MaskF32x8 a) {
    return MaskF32x8{_mm256_xor_ps(a.m, _mm256_castsi256_ps(_mm256_set1_epi32(-1)))};
  }
  bool operator[](int i) const { return (_mm256_movemask_ps(m) >> i) & 1; }
};
inline unsigned to_bits(MaskF32x8 a) { return static_cast<unsigned>(_mm256_movemask_ps(a.m)); }
inline bool any(MaskF32x8 a) { return to_bits(a) != 0; }
inline bool all(MaskF32x8 a) { return to_bits(a) == 0xFFu; }

/// 4-lane int32 mask held as an all-ones/all-zeros __m128i.
struct MaskI32x4 {
  using value_type = std::int32_t;
  static constexpr int width = 4;
  __m128i m;
  MaskI32x4() : m(_mm_setzero_si128()) {}
  explicit MaskI32x4(__m128i r) : m(r) {}
  friend MaskI32x4 operator&(MaskI32x4 a, MaskI32x4 b) {
    return MaskI32x4{_mm_and_si128(a.m, b.m)};
  }
  friend MaskI32x4 operator|(MaskI32x4 a, MaskI32x4 b) {
    return MaskI32x4{_mm_or_si128(a.m, b.m)};
  }
  friend MaskI32x4 operator!(MaskI32x4 a) {
    return MaskI32x4{_mm_xor_si128(a.m, _mm_set1_epi32(-1))};
  }
  bool operator[](int i) const {
    return (_mm_movemask_ps(_mm_castsi128_ps(m)) >> i) & 1;
  }
};
inline unsigned to_bits(MaskI32x4 a) {
  return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(a.m)));
}
inline bool any(MaskI32x4 a) { return to_bits(a) != 0; }
inline bool all(MaskI32x4 a) { return to_bits(a) == 0xFu; }

/// 8-lane int32 mask held as an all-ones/all-zeros __m256i.
struct MaskI32x8 {
  using value_type = std::int32_t;
  static constexpr int width = 8;
  __m256i m;
  MaskI32x8() : m(_mm256_setzero_si256()) {}
  explicit MaskI32x8(__m256i r) : m(r) {}
  friend MaskI32x8 operator&(MaskI32x8 a, MaskI32x8 b) {
    return MaskI32x8{_mm256_and_si256(a.m, b.m)};
  }
  friend MaskI32x8 operator|(MaskI32x8 a, MaskI32x8 b) {
    return MaskI32x8{_mm256_or_si256(a.m, b.m)};
  }
  friend MaskI32x8 operator!(MaskI32x8 a) {
    return MaskI32x8{_mm256_xor_si256(a.m, _mm256_set1_epi32(-1))};
  }
  bool operator[](int i) const {
    return (_mm256_movemask_ps(_mm256_castsi256_ps(m)) >> i) & 1;
  }
};
inline unsigned to_bits(MaskI32x8 a) {
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(a.m)));
}
inline bool any(MaskI32x8 a) { return to_bits(a) != 0; }
inline bool all(MaskI32x8 a) { return to_bits(a) == 0xFFu; }

// ---- int index vectors --------------------------------------------------

/// 4 x int32 (index vector for F64x4).
struct I32x4 {
  using value_type = std::int32_t;
  using mask_type = MaskI32x4;
  using index_type = I32x4;
  static constexpr int width = 4;
  __m128i v;

  I32x4() : v(_mm_setzero_si128()) {}
  I32x4(std::int32_t x) : v(_mm_set1_epi32(x)) {}  // NOLINT broadcast
  explicit I32x4(__m128i r) : v(r) {}

  static I32x4 loadu(const std::int32_t* p) {
    return I32x4{_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  static I32x4 loada(const std::int32_t* p) { return loadu(p); }
  static I32x4 gather(const std::int32_t* base, I32x4 idx) {
    return I32x4{_mm_i32gather_epi32(base, idx.v, 4)};
  }
  static I32x4 gather_masked(const std::int32_t* base, I32x4 idx, MaskI32x4 m, I32x4 fb) {
    return I32x4{_mm_mask_i32gather_epi32(fb.v, base, idx.v, m.m, 4)};
  }
  static I32x4 strided(const std::int32_t* p, int s) {
    return I32x4{_mm_setr_epi32(p[0], p[s], p[2 * s], p[3 * s])};
  }
  static I32x4 iota(std::int32_t s = 0) { return I32x4{_mm_setr_epi32(s, s + 1, s + 2, s + 3)}; }

  std::int32_t operator[](int i) const {
    alignas(16) std::int32_t t[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(t), v);
    return t[i];
  }
  std::array<std::int32_t, 4> to_array() const {
    alignas(16) std::int32_t t[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(t), v);
    return {t[0], t[1], t[2], t[3]};
  }

  friend I32x4 operator+(I32x4 a, I32x4 b) { return I32x4{_mm_add_epi32(a.v, b.v)}; }
  friend I32x4 operator-(I32x4 a, I32x4 b) { return I32x4{_mm_sub_epi32(a.v, b.v)}; }
  friend I32x4 operator*(I32x4 a, I32x4 b) { return I32x4{_mm_mullo_epi32(a.v, b.v)}; }
  friend I32x4 operator>>(I32x4 a, int s) { return I32x4{_mm_srai_epi32(a.v, s)}; }
  I32x4& operator+=(I32x4 o) {
    v = _mm_add_epi32(v, o.v);
    return *this;
  }

  friend MaskI32x4 operator==(I32x4 a, I32x4 b) { return MaskI32x4{_mm_cmpeq_epi32(a.v, b.v)}; }
  friend MaskI32x4 operator<(I32x4 a, I32x4 b) { return MaskI32x4{_mm_cmplt_epi32(a.v, b.v)}; }
  friend MaskI32x4 operator>(I32x4 a, I32x4 b) { return MaskI32x4{_mm_cmpgt_epi32(a.v, b.v)}; }
  friend MaskI32x4 operator!=(I32x4 a, I32x4 b) { return !(a == b); }
};

/// 8 x int32 (index vector for F32x8 and for AVX-512 F64x8).
struct I32x8 {
  using value_type = std::int32_t;
  using mask_type = MaskI32x8;
  using index_type = I32x8;
  static constexpr int width = 8;
  __m256i v;

  I32x8() : v(_mm256_setzero_si256()) {}
  I32x8(std::int32_t x) : v(_mm256_set1_epi32(x)) {}  // NOLINT broadcast
  explicit I32x8(__m256i r) : v(r) {}

  static I32x8 loadu(const std::int32_t* p) {
    return I32x8{_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  static I32x8 loada(const std::int32_t* p) { return loadu(p); }
  static I32x8 gather(const std::int32_t* base, I32x8 idx) {
    return I32x8{_mm256_i32gather_epi32(base, idx.v, 4)};
  }
  static I32x8 gather_masked(const std::int32_t* base, I32x8 idx, MaskI32x8 m, I32x8 fb) {
    return I32x8{_mm256_mask_i32gather_epi32(fb.v, base, idx.v, m.m, 4)};
  }
  static I32x8 strided(const std::int32_t* p, int s) {
    return I32x8{_mm256_setr_epi32(p[0], p[s], p[2 * s], p[3 * s], p[4 * s], p[5 * s], p[6 * s],
                                   p[7 * s])};
  }
  static I32x8 iota(std::int32_t s = 0) {
    return I32x8{_mm256_setr_epi32(s, s + 1, s + 2, s + 3, s + 4, s + 5, s + 6, s + 7)};
  }

  std::int32_t operator[](int i) const {
    alignas(32) std::int32_t t[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(t), v);
    return t[i];
  }
  std::array<std::int32_t, 8> to_array() const {
    alignas(32) std::int32_t t[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(t), v);
    std::array<std::int32_t, 8> a;
    for (int i = 0; i < 8; ++i) a[i] = t[i];
    return a;
  }

  friend I32x8 operator+(I32x8 a, I32x8 b) { return I32x8{_mm256_add_epi32(a.v, b.v)}; }
  friend I32x8 operator-(I32x8 a, I32x8 b) { return I32x8{_mm256_sub_epi32(a.v, b.v)}; }
  friend I32x8 operator*(I32x8 a, I32x8 b) { return I32x8{_mm256_mullo_epi32(a.v, b.v)}; }
  friend I32x8 operator>>(I32x8 a, int s) { return I32x8{_mm256_srai_epi32(a.v, s)}; }
  I32x8& operator+=(I32x8 o) {
    v = _mm256_add_epi32(v, o.v);
    return *this;
  }

  friend MaskI32x8 operator==(I32x8 a, I32x8 b) {
    return MaskI32x8{_mm256_cmpeq_epi32(a.v, b.v)};
  }
  friend MaskI32x8 operator>(I32x8 a, I32x8 b) { return MaskI32x8{_mm256_cmpgt_epi32(a.v, b.v)}; }
  friend MaskI32x8 operator<(I32x8 a, I32x8 b) { return b > a; }
  friend MaskI32x8 operator!=(I32x8 a, I32x8 b) { return !(a == b); }
};

// ---- F64x4 ---------------------------------------------------------------

/// 4 x double in a 256-bit AVX register — the paper's F64vec4.
struct F64x4 {
  using value_type = double;
  using mask_type = MaskF64x4;
  using index_type = I32x4;
  static constexpr int width = 4;
  __m256d v;

  F64x4() : v(_mm256_setzero_pd()) {}
  F64x4(double x) : v(_mm256_set1_pd(x)) {}  // NOLINT broadcast, mirrors dvec.h
  explicit F64x4(__m256d r) : v(r) {}

  static F64x4 loadu(const double* p) { return F64x4{_mm256_loadu_pd(p)}; }
  static F64x4 loada(const double* p) { return F64x4{_mm256_load_pd(p)}; }
  static F64x4 gather(const double* base, I32x4 idx) {
    return F64x4{_mm256_i32gather_pd(base, idx.v, 8)};
  }
  static F64x4 gather_masked(const double* base, I32x4 idx, MaskF64x4 m, F64x4 fb) {
    return F64x4{_mm256_mask_i32gather_pd(fb.v, base, idx.v, m.m, 8)};
  }
  static F64x4 strided(const double* p, int s) {
    return F64x4{_mm256_setr_pd(p[0], p[s], p[2 * s], p[3 * s])};
  }
  static F64x4 iota(double s = 0.0) { return F64x4{_mm256_setr_pd(s, s + 1, s + 2, s + 3)}; }

  double operator[](int i) const {
    alignas(32) double t[4];
    _mm256_store_pd(t, v);
    return t[i];
  }
  std::array<double, 4> to_array() const {
    alignas(32) double t[4];
    _mm256_store_pd(t, v);
    return {t[0], t[1], t[2], t[3]};
  }

  F64x4& operator+=(F64x4 o) {
    v = _mm256_add_pd(v, o.v);
    return *this;
  }
  F64x4& operator-=(F64x4 o) {
    v = _mm256_sub_pd(v, o.v);
    return *this;
  }
  F64x4& operator*=(F64x4 o) {
    v = _mm256_mul_pd(v, o.v);
    return *this;
  }
  F64x4& operator/=(F64x4 o) {
    v = _mm256_div_pd(v, o.v);
    return *this;
  }

  friend F64x4 operator+(F64x4 a, F64x4 b) { return F64x4{_mm256_add_pd(a.v, b.v)}; }
  friend F64x4 operator-(F64x4 a, F64x4 b) { return F64x4{_mm256_sub_pd(a.v, b.v)}; }
  friend F64x4 operator*(F64x4 a, F64x4 b) { return F64x4{_mm256_mul_pd(a.v, b.v)}; }
  friend F64x4 operator/(F64x4 a, F64x4 b) { return F64x4{_mm256_div_pd(a.v, b.v)}; }
  friend F64x4 operator-(F64x4 a) { return F64x4{_mm256_sub_pd(_mm256_setzero_pd(), a.v)}; }

  friend MaskF64x4 operator<(F64x4 a, F64x4 b) {
    return MaskF64x4{_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
  }
  friend MaskF64x4 operator<=(F64x4 a, F64x4 b) {
    return MaskF64x4{_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
  }
  friend MaskF64x4 operator>(F64x4 a, F64x4 b) {
    return MaskF64x4{_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)};
  }
  friend MaskF64x4 operator>=(F64x4 a, F64x4 b) {
    return MaskF64x4{_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)};
  }
  friend MaskF64x4 operator==(F64x4 a, F64x4 b) {
    return MaskF64x4{_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)};
  }
  friend MaskF64x4 operator!=(F64x4 a, F64x4 b) {
    return MaskF64x4{_mm256_cmp_pd(a.v, b.v, _CMP_NEQ_UQ)};
  }
};

inline void storeu(double* p, F64x4 a) { _mm256_storeu_pd(p, a.v); }
inline void storea(double* p, F64x4 a) { _mm256_store_pd(p, a.v); }
inline void store_strided(double* p, int s, F64x4 a) {
  alignas(32) double t[4];
  _mm256_store_pd(t, a.v);
  p[0] = t[0];
  p[s] = t[1];
  p[2 * s] = t[2];
  p[3 * s] = t[3];
}
inline void scatter_serial(double* base, I32x4 idx, F64x4 a) {
  alignas(32) double t[4];
  alignas(16) std::int32_t ix[4];
  _mm256_store_pd(t, a.v);
  _mm_store_si128(reinterpret_cast<__m128i*>(ix), idx.v);
  for (int i = 0; i < 4; ++i) base[ix[i]] = t[i];
}
inline void scatter_add_serial(double* base, I32x4 idx, F64x4 a) {
  alignas(32) double t[4];
  alignas(16) std::int32_t ix[4];
  _mm256_store_pd(t, a.v);
  _mm_store_si128(reinterpret_cast<__m128i*>(ix), idx.v);
  for (int i = 0; i < 4; ++i) base[ix[i]] += t[i];
}
// AVX2 has no scatter instruction: hardware-style scatter-add is emulated
// (requires unique lane indices, same contract as real scatter).
inline void scatter_add_hw(double* base, I32x4 idx, F64x4 a) {
  F64x4 cur = F64x4::gather(base, idx);
  scatter_serial(base, idx, cur + a);
}
inline void scatter_add_serial_masked(double* base, I32x4 idx, F64x4 a, MaskF64x4 m) {
  alignas(32) double t[4];
  alignas(16) std::int32_t ix[4];
  _mm256_store_pd(t, a.v);
  _mm_store_si128(reinterpret_cast<__m128i*>(ix), idx.v);
  const unsigned bits = to_bits(m);
  for (int i = 0; i < 4; ++i)
    if ((bits >> i) & 1) base[ix[i]] += t[i];
}

inline F64x4 select(MaskF64x4 m, F64x4 a, F64x4 b) {
  return F64x4{_mm256_blendv_pd(b.v, a.v, m.m)};
}
inline F64x4 min(F64x4 a, F64x4 b) { return F64x4{_mm256_min_pd(a.v, b.v)}; }
inline F64x4 max(F64x4 a, F64x4 b) { return F64x4{_mm256_max_pd(a.v, b.v)}; }
inline F64x4 abs(F64x4 a) {
  return F64x4{_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
inline F64x4 sqrt(F64x4 a) { return F64x4{_mm256_sqrt_pd(a.v)}; }
inline F64x4 fma(F64x4 a, F64x4 b, F64x4 c) {
#if defined(__FMA__)
  return F64x4{_mm256_fmadd_pd(a.v, b.v, c.v)};
#else
  return a * b + c;
#endif
}
inline double hsum(F64x4 a) {
  const auto t = a.to_array();
  return t[0] + t[1] + t[2] + t[3];
}
inline double hmin(F64x4 a) {
  const auto t = a.to_array();
  double s = t[0];
  for (int i = 1; i < 4; ++i) s = t[i] < s ? t[i] : s;
  return s;
}
inline double hmax(F64x4 a) {
  const auto t = a.to_array();
  double s = t[0];
  for (int i = 1; i < 4; ++i) s = t[i] > s ? t[i] : s;
  return s;
}

// ---- F32x8 ---------------------------------------------------------------

/// 8 x float in a 256-bit AVX register — the paper's F32vec8.
struct F32x8 {
  using value_type = float;
  using mask_type = MaskF32x8;
  using index_type = I32x8;
  static constexpr int width = 8;
  __m256 v;

  F32x8() : v(_mm256_setzero_ps()) {}
  F32x8(float x) : v(_mm256_set1_ps(x)) {}  // NOLINT broadcast
  explicit F32x8(__m256 r) : v(r) {}

  static F32x8 loadu(const float* p) { return F32x8{_mm256_loadu_ps(p)}; }
  static F32x8 loada(const float* p) { return F32x8{_mm256_load_ps(p)}; }
  static F32x8 gather(const float* base, I32x8 idx) {
    return F32x8{_mm256_i32gather_ps(base, idx.v, 4)};
  }
  static F32x8 gather_masked(const float* base, I32x8 idx, MaskF32x8 m, F32x8 fb) {
    return F32x8{_mm256_mask_i32gather_ps(fb.v, base, idx.v, m.m, 4)};
  }
  static F32x8 strided(const float* p, int s) {
    return F32x8{_mm256_setr_ps(p[0], p[s], p[2 * s], p[3 * s], p[4 * s], p[5 * s], p[6 * s],
                                p[7 * s])};
  }
  static F32x8 iota(float s = 0.f) {
    return F32x8{_mm256_setr_ps(s, s + 1, s + 2, s + 3, s + 4, s + 5, s + 6, s + 7)};
  }

  float operator[](int i) const {
    alignas(32) float t[8];
    _mm256_store_ps(t, v);
    return t[i];
  }
  std::array<float, 8> to_array() const {
    alignas(32) float t[8];
    _mm256_store_ps(t, v);
    std::array<float, 8> a;
    for (int i = 0; i < 8; ++i) a[i] = t[i];
    return a;
  }

  F32x8& operator+=(F32x8 o) {
    v = _mm256_add_ps(v, o.v);
    return *this;
  }
  F32x8& operator-=(F32x8 o) {
    v = _mm256_sub_ps(v, o.v);
    return *this;
  }
  F32x8& operator*=(F32x8 o) {
    v = _mm256_mul_ps(v, o.v);
    return *this;
  }
  F32x8& operator/=(F32x8 o) {
    v = _mm256_div_ps(v, o.v);
    return *this;
  }

  friend F32x8 operator+(F32x8 a, F32x8 b) { return F32x8{_mm256_add_ps(a.v, b.v)}; }
  friend F32x8 operator-(F32x8 a, F32x8 b) { return F32x8{_mm256_sub_ps(a.v, b.v)}; }
  friend F32x8 operator*(F32x8 a, F32x8 b) { return F32x8{_mm256_mul_ps(a.v, b.v)}; }
  friend F32x8 operator/(F32x8 a, F32x8 b) { return F32x8{_mm256_div_ps(a.v, b.v)}; }
  friend F32x8 operator-(F32x8 a) { return F32x8{_mm256_sub_ps(_mm256_setzero_ps(), a.v)}; }

  friend MaskF32x8 operator<(F32x8 a, F32x8 b) {
    return MaskF32x8{_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)};
  }
  friend MaskF32x8 operator<=(F32x8 a, F32x8 b) {
    return MaskF32x8{_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ)};
  }
  friend MaskF32x8 operator>(F32x8 a, F32x8 b) {
    return MaskF32x8{_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
  }
  friend MaskF32x8 operator>=(F32x8 a, F32x8 b) {
    return MaskF32x8{_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)};
  }
  friend MaskF32x8 operator==(F32x8 a, F32x8 b) {
    return MaskF32x8{_mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ)};
  }
  friend MaskF32x8 operator!=(F32x8 a, F32x8 b) {
    return MaskF32x8{_mm256_cmp_ps(a.v, b.v, _CMP_NEQ_UQ)};
  }
};

inline void storeu(float* p, F32x8 a) { _mm256_storeu_ps(p, a.v); }
inline void storea(float* p, F32x8 a) { _mm256_store_ps(p, a.v); }
inline void store_strided(float* p, int s, F32x8 a) {
  alignas(32) float t[8];
  _mm256_store_ps(t, a.v);
  for (int i = 0; i < 8; ++i) p[i * s] = t[i];
}
inline void scatter_serial(float* base, I32x8 idx, F32x8 a) {
  alignas(32) float t[8];
  alignas(32) std::int32_t ix[8];
  _mm256_store_ps(t, a.v);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ix), idx.v);
  for (int i = 0; i < 8; ++i) base[ix[i]] = t[i];
}
inline void scatter_add_serial(float* base, I32x8 idx, F32x8 a) {
  alignas(32) float t[8];
  alignas(32) std::int32_t ix[8];
  _mm256_store_ps(t, a.v);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ix), idx.v);
  for (int i = 0; i < 8; ++i) base[ix[i]] += t[i];
}
inline void scatter_add_hw(float* base, I32x8 idx, F32x8 a) {
  F32x8 cur = F32x8::gather(base, idx);
  scatter_serial(base, idx, cur + a);
}
inline void scatter_add_serial_masked(float* base, I32x8 idx, F32x8 a, MaskF32x8 m) {
  alignas(32) float t[8];
  alignas(32) std::int32_t ix[8];
  _mm256_store_ps(t, a.v);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ix), idx.v);
  const unsigned bits = to_bits(m);
  for (int i = 0; i < 8; ++i)
    if ((bits >> i) & 1) base[ix[i]] += t[i];
}

inline F32x8 select(MaskF32x8 m, F32x8 a, F32x8 b) {
  return F32x8{_mm256_blendv_ps(b.v, a.v, m.m)};
}
inline F32x8 min(F32x8 a, F32x8 b) { return F32x8{_mm256_min_ps(a.v, b.v)}; }
inline F32x8 max(F32x8 a, F32x8 b) { return F32x8{_mm256_max_ps(a.v, b.v)}; }
inline F32x8 abs(F32x8 a) { return F32x8{_mm256_andnot_ps(_mm256_set1_ps(-0.f), a.v)}; }
inline F32x8 sqrt(F32x8 a) { return F32x8{_mm256_sqrt_ps(a.v)}; }
inline F32x8 fma(F32x8 a, F32x8 b, F32x8 c) {
#if defined(__FMA__)
  return F32x8{_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
  return a * b + c;
#endif
}
inline float hsum(F32x8 a) {
  const auto t = a.to_array();
  float s = 0.f;
  for (int i = 0; i < 8; ++i) s += t[i];
  return s;
}
inline float hmin(F32x8 a) {
  const auto t = a.to_array();
  float s = t[0];
  for (int i = 1; i < 8; ++i) s = t[i] < s ? t[i] : s;
  return s;
}
inline float hmax(F32x8 a) {
  const auto t = a.to_array();
  float s = t[0];
  for (int i = 1; i < 8; ++i) s = t[i] > s ? t[i] : s;
  return s;
}

// ---- int stores / scatters / reductions -----------------------------------
// (the par_loop engine instantiates every flush path for int32 datasets too)

inline void storeu(std::int32_t* p, I32x4 a) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), a.v);
}
inline void storeu(std::int32_t* p, I32x8 a) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), a.v);
}
inline void store_strided(std::int32_t* p, int s, I32x4 a) {
  const auto t = a.to_array();
  for (int i = 0; i < 4; ++i) p[i * s] = t[i];
}
inline void store_strided(std::int32_t* p, int s, I32x8 a) {
  const auto t = a.to_array();
  for (int i = 0; i < 8; ++i) p[i * s] = t[i];
}
inline void scatter_serial(std::int32_t* base, I32x4 idx, I32x4 a) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  for (int i = 0; i < 4; ++i) base[ix[i]] = t[i];
}
inline void scatter_serial(std::int32_t* base, I32x8 idx, I32x8 a) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  for (int i = 0; i < 8; ++i) base[ix[i]] = t[i];
}
inline void scatter_add_serial(std::int32_t* base, I32x4 idx, I32x4 a) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  for (int i = 0; i < 4; ++i) base[ix[i]] += t[i];
}
inline void scatter_add_serial(std::int32_t* base, I32x8 idx, I32x8 a) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  for (int i = 0; i < 8; ++i) base[ix[i]] += t[i];
}
inline void scatter_add_hw(std::int32_t* base, I32x4 idx, I32x4 a) {
  scatter_serial(base, idx, I32x4::gather(base, idx) + a);
}
inline void scatter_add_hw(std::int32_t* base, I32x8 idx, I32x8 a) {
  scatter_serial(base, idx, I32x8::gather(base, idx) + a);
}
inline void scatter_add_serial_masked(std::int32_t* base, I32x4 idx, I32x4 a, MaskI32x4 m) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  const unsigned bits = to_bits(m);
  for (int i = 0; i < 4; ++i)
    if ((bits >> i) & 1) base[ix[i]] += t[i];
}
inline void scatter_add_serial_masked(std::int32_t* base, I32x8 idx, I32x8 a, MaskI32x8 m) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  const unsigned bits = to_bits(m);
  for (int i = 0; i < 8; ++i)
    if ((bits >> i) & 1) base[ix[i]] += t[i];
}
inline std::int32_t hsum(I32x4 a) {
  const auto t = a.to_array();
  return t[0] + t[1] + t[2] + t[3];
}
inline std::int32_t hsum(I32x8 a) {
  const auto t = a.to_array();
  std::int32_t s = 0;
  for (int i = 0; i < 8; ++i) s += t[i];
  return s;
}
inline std::int32_t hmin(I32x4 a) {
  const auto t = a.to_array();
  std::int32_t s = t[0];
  for (int i = 1; i < 4; ++i) s = t[i] < s ? t[i] : s;
  return s;
}
inline std::int32_t hmin(I32x8 a) {
  const auto t = a.to_array();
  std::int32_t s = t[0];
  for (int i = 1; i < 8; ++i) s = t[i] < s ? t[i] : s;
  return s;
}
inline std::int32_t hmax(I32x4 a) {
  const auto t = a.to_array();
  std::int32_t s = t[0];
  for (int i = 1; i < 4; ++i) s = t[i] > s ? t[i] : s;
  return s;
}
inline std::int32_t hmax(I32x8 a) {
  const auto t = a.to_array();
  std::int32_t s = t[0];
  for (int i = 1; i < 8; ++i) s = t[i] > s ? t[i] : s;
  return s;
}

// ---- select for int vectors ----------------------------------------------

inline I32x4 select(MaskI32x4 m, I32x4 a, I32x4 b) {
  return I32x4{_mm_blendv_epi8(b.v, a.v, m.m)};
}
inline I32x8 select(MaskI32x8 m, I32x8 a, I32x8 b) {
  return I32x8{_mm256_blendv_epi8(b.v, a.v, m.m)};
}
inline I32x4 min(I32x4 a, I32x4 b) { return I32x4{_mm_min_epi32(a.v, b.v)}; }
inline I32x4 max(I32x4 a, I32x4 b) { return I32x4{_mm_max_epi32(a.v, b.v)}; }
inline I32x8 min(I32x8 a, I32x8 b) { return I32x8{_mm256_min_epi32(a.v, b.v)}; }
inline I32x8 max(I32x8 a, I32x8 b) { return I32x8{_mm256_max_epi32(a.v, b.v)}; }

// ---- mask conversions ------------------------------------------------------

/// int32 comparison mask -> double select mask (4 lanes): sign-extend 0/-1.
inline MaskF64x4 mask_to_f64(MaskI32x4 m) {
  return MaskF64x4{_mm256_castsi256_pd(_mm256_cvtepi32_epi64(m.m))};
}
/// int32 comparison mask -> float select mask (8 lanes): pure bit cast.
inline MaskF32x8 mask_to_f32(MaskI32x8 m) {
  return MaskF32x8{_mm256_castsi256_ps(m.m)};
}

/// Tail mask with the first n of 4 double lanes active.
inline MaskF64x4 tail_mask_f64x4(int n) {
  alignas(32) static constexpr std::int64_t kTbl[5][4] = {
      {0, 0, 0, 0}, {-1, 0, 0, 0}, {-1, -1, 0, 0}, {-1, -1, -1, 0}, {-1, -1, -1, -1}};
  return MaskF64x4{
      _mm256_castsi256_pd(_mm256_load_si256(reinterpret_cast<const __m256i*>(kTbl[n])))};
}
/// Tail mask with the first n of 8 float lanes active.
inline MaskF32x8 tail_mask_f32x8(int n) {
  alignas(32) static constexpr std::int32_t kTbl[9][8] = {
      {0, 0, 0, 0, 0, 0, 0, 0},         {-1, 0, 0, 0, 0, 0, 0, 0},
      {-1, -1, 0, 0, 0, 0, 0, 0},       {-1, -1, -1, 0, 0, 0, 0, 0},
      {-1, -1, -1, -1, 0, 0, 0, 0},     {-1, -1, -1, -1, -1, 0, 0, 0},
      {-1, -1, -1, -1, -1, -1, 0, 0},   {-1, -1, -1, -1, -1, -1, -1, 0},
      {-1, -1, -1, -1, -1, -1, -1, -1}};
  return MaskF32x8{
      _mm256_castsi256_ps(_mm256_load_si256(reinterpret_cast<const __m256i*>(kTbl[n])))};
}

}  // namespace opv::simd

#endif  // __AVX2__
