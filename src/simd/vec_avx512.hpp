// AVX-512 (512-bit) specializations — the stand-in for the Xeon Phi's IMCI
// instruction set (paper Figure 4b): 8 doubles / 16 floats per register,
// native mask registers, and — crucially — real hardware gather AND scatter
// instructions (_mm512_i32logather_pd / i32scatter_pd in the paper). The
// permute coloring schemes only become interesting on this ISA.
#pragma once

#include <array>
#include <cstdint>

#if defined(__AVX512F__) && defined(__AVX2__)
#include <immintrin.h>

#include "simd/vec_avx2.hpp"
#include "simd/vec_portable.hpp"

namespace opv::simd {

// ---- masks: native k-registers -------------------------------------------

/// 8-lane mask backed by a __mmask8 k-register.
struct MaskK8 {
  static constexpr int width = 8;
  __mmask8 m;
  MaskK8() : m(0) {}
  explicit MaskK8(__mmask8 r) : m(r) {}
  friend MaskK8 operator&(MaskK8 a, MaskK8 b) { return MaskK8{static_cast<__mmask8>(a.m & b.m)}; }
  friend MaskK8 operator|(MaskK8 a, MaskK8 b) { return MaskK8{static_cast<__mmask8>(a.m | b.m)}; }
  friend MaskK8 operator^(MaskK8 a, MaskK8 b) { return MaskK8{static_cast<__mmask8>(a.m ^ b.m)}; }
  friend MaskK8 operator!(MaskK8 a) { return MaskK8{static_cast<__mmask8>(~a.m)}; }
  bool operator[](int i) const { return (m >> i) & 1; }
};
inline unsigned to_bits(MaskK8 a) { return a.m; }
inline bool any(MaskK8 a) { return a.m != 0; }
inline bool all(MaskK8 a) { return a.m == 0xFFu; }

/// 16-lane mask backed by a __mmask16 k-register.
struct MaskK16 {
  static constexpr int width = 16;
  __mmask16 m;
  MaskK16() : m(0) {}
  explicit MaskK16(__mmask16 r) : m(r) {}
  friend MaskK16 operator&(MaskK16 a, MaskK16 b) {
    return MaskK16{static_cast<__mmask16>(a.m & b.m)};
  }
  friend MaskK16 operator|(MaskK16 a, MaskK16 b) {
    return MaskK16{static_cast<__mmask16>(a.m | b.m)};
  }
  friend MaskK16 operator^(MaskK16 a, MaskK16 b) {
    return MaskK16{static_cast<__mmask16>(a.m ^ b.m)};
  }
  friend MaskK16 operator!(MaskK16 a) { return MaskK16{static_cast<__mmask16>(~a.m)}; }
  bool operator[](int i) const { return (m >> i) & 1; }
};
inline unsigned to_bits(MaskK16 a) { return a.m; }
inline bool any(MaskK16 a) { return a.m != 0; }
inline bool all(MaskK16 a) { return a.m == 0xFFFFu; }

struct F64x8;
struct F32x16;
struct I32x16;

// ---- F64x8 -----------------------------------------------------------------

/// 8 x double in a 512-bit register — the paper's F64vec8 (IMCI).
struct F64x8 {
  using value_type = double;
  using mask_type = MaskK8;
  using index_type = I32x8;  // 8 x int32 in a 256-bit register
  static constexpr int width = 8;
  __m512d v;

  F64x8() : v(_mm512_setzero_pd()) {}
  F64x8(double x) : v(_mm512_set1_pd(x)) {}  // NOLINT broadcast
  explicit F64x8(__m512d r) : v(r) {}

  static F64x8 loadu(const double* p) { return F64x8{_mm512_loadu_pd(p)}; }
  static F64x8 loada(const double* p) { return F64x8{_mm512_load_pd(p)}; }
  /// The paper's _mm512_i32logather_pd: 32-bit indices gathering doubles.
  static F64x8 gather(const double* base, I32x8 idx) {
    return F64x8{_mm512_i32gather_pd(idx.v, base, 8)};
  }
  static F64x8 gather_masked(const double* base, I32x8 idx, MaskK8 m, F64x8 fb) {
    return F64x8{_mm512_mask_i32gather_pd(fb.v, m.m, idx.v, base, 8)};
  }
  static F64x8 strided(const double* p, int s) {
    return F64x8{_mm512_setr_pd(p[0], p[s], p[2 * s], p[3 * s], p[4 * s], p[5 * s], p[6 * s],
                                p[7 * s])};
  }
  static F64x8 iota(double s = 0.0) {
    return F64x8{_mm512_setr_pd(s, s + 1, s + 2, s + 3, s + 4, s + 5, s + 6, s + 7)};
  }

  double operator[](int i) const {
    alignas(64) double t[8];
    _mm512_store_pd(t, v);
    return t[i];
  }
  std::array<double, 8> to_array() const {
    alignas(64) double t[8];
    _mm512_store_pd(t, v);
    std::array<double, 8> a;
    for (int i = 0; i < 8; ++i) a[i] = t[i];
    return a;
  }

  F64x8& operator+=(F64x8 o) {
    v = _mm512_add_pd(v, o.v);
    return *this;
  }
  F64x8& operator-=(F64x8 o) {
    v = _mm512_sub_pd(v, o.v);
    return *this;
  }
  F64x8& operator*=(F64x8 o) {
    v = _mm512_mul_pd(v, o.v);
    return *this;
  }
  F64x8& operator/=(F64x8 o) {
    v = _mm512_div_pd(v, o.v);
    return *this;
  }

  friend F64x8 operator+(F64x8 a, F64x8 b) { return F64x8{_mm512_add_pd(a.v, b.v)}; }
  friend F64x8 operator-(F64x8 a, F64x8 b) { return F64x8{_mm512_sub_pd(a.v, b.v)}; }
  friend F64x8 operator*(F64x8 a, F64x8 b) { return F64x8{_mm512_mul_pd(a.v, b.v)}; }
  friend F64x8 operator/(F64x8 a, F64x8 b) { return F64x8{_mm512_div_pd(a.v, b.v)}; }
  friend F64x8 operator-(F64x8 a) { return F64x8{_mm512_sub_pd(_mm512_setzero_pd(), a.v)}; }

  friend MaskK8 operator<(F64x8 a, F64x8 b) {
    return MaskK8{_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ)};
  }
  friend MaskK8 operator<=(F64x8 a, F64x8 b) {
    return MaskK8{_mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ)};
  }
  friend MaskK8 operator>(F64x8 a, F64x8 b) {
    return MaskK8{_mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ)};
  }
  friend MaskK8 operator>=(F64x8 a, F64x8 b) {
    return MaskK8{_mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ)};
  }
  friend MaskK8 operator==(F64x8 a, F64x8 b) {
    return MaskK8{_mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ)};
  }
  friend MaskK8 operator!=(F64x8 a, F64x8 b) {
    return MaskK8{_mm512_cmp_pd_mask(a.v, b.v, _CMP_NEQ_UQ)};
  }
};

inline void storeu(double* p, F64x8 a) { _mm512_storeu_pd(p, a.v); }
inline void storea(double* p, F64x8 a) { _mm512_store_pd(p, a.v); }
inline void store_strided(double* p, int s, F64x8 a) {
  alignas(64) double t[8];
  _mm512_store_pd(t, a.v);
  for (int i = 0; i < 8; ++i) p[i * s] = t[i];
}
inline void scatter_serial(double* base, I32x8 idx, F64x8 a) {
  alignas(64) double t[8];
  alignas(32) std::int32_t ix[8];
  _mm512_store_pd(t, a.v);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ix), idx.v);
  for (int i = 0; i < 8; ++i) base[ix[i]] = t[i];
}
inline void scatter_add_serial(double* base, I32x8 idx, F64x8 a) {
  alignas(64) double t[8];
  alignas(32) std::int32_t ix[8];
  _mm512_store_pd(t, a.v);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ix), idx.v);
  for (int i = 0; i < 8; ++i) base[ix[i]] += t[i];
}
/// Real hardware scatter-add (gather + add + _mm512_i32scatter_pd).
/// Lane indices MUST be unique (permute colorings guarantee this).
inline void scatter_add_hw(double* base, I32x8 idx, F64x8 a) {
  F64x8 cur = F64x8::gather(base, idx);
  cur += a;
  _mm512_i32scatter_pd(base, idx.v, cur.v, 8);
}
inline void scatter_add_serial_masked(double* base, I32x8 idx, F64x8 a, MaskK8 m) {
  alignas(64) double t[8];
  alignas(32) std::int32_t ix[8];
  _mm512_store_pd(t, a.v);
  _mm256_store_si256(reinterpret_cast<__m256i*>(ix), idx.v);
  for (int i = 0; i < 8; ++i)
    if ((m.m >> i) & 1) base[ix[i]] += t[i];
}

inline F64x8 select(MaskK8 m, F64x8 a, F64x8 b) {
  return F64x8{_mm512_mask_blend_pd(m.m, b.v, a.v)};
}
inline F64x8 min(F64x8 a, F64x8 b) { return F64x8{_mm512_min_pd(a.v, b.v)}; }
inline F64x8 max(F64x8 a, F64x8 b) { return F64x8{_mm512_max_pd(a.v, b.v)}; }
inline F64x8 abs(F64x8 a) { return F64x8{_mm512_abs_pd(a.v)}; }
inline F64x8 sqrt(F64x8 a) { return F64x8{_mm512_sqrt_pd(a.v)}; }
inline F64x8 fma(F64x8 a, F64x8 b, F64x8 c) { return F64x8{_mm512_fmadd_pd(a.v, b.v, c.v)}; }
inline double hsum(F64x8 a) { return _mm512_reduce_add_pd(a.v); }
inline double hmin(F64x8 a) { return _mm512_reduce_min_pd(a.v); }
inline double hmax(F64x8 a) { return _mm512_reduce_max_pd(a.v); }

// ---- I32x16 ----------------------------------------------------------------

/// 16 x int32 in a 512-bit register (index vector for F32x16).
struct I32x16 {
  using value_type = std::int32_t;
  using mask_type = MaskK16;
  using index_type = I32x16;
  static constexpr int width = 16;
  __m512i v;

  I32x16() : v(_mm512_setzero_si512()) {}
  I32x16(std::int32_t x) : v(_mm512_set1_epi32(x)) {}  // NOLINT broadcast
  explicit I32x16(__m512i r) : v(r) {}

  static I32x16 loadu(const std::int32_t* p) { return I32x16{_mm512_loadu_si512(p)}; }
  static I32x16 loada(const std::int32_t* p) { return I32x16{_mm512_load_si512(p)}; }
  static I32x16 gather(const std::int32_t* base, I32x16 idx) {
    return I32x16{_mm512_i32gather_epi32(idx.v, base, 4)};
  }
  static I32x16 gather_masked(const std::int32_t* base, I32x16 idx, MaskK16 m, I32x16 fb) {
    return I32x16{_mm512_mask_i32gather_epi32(fb.v, m.m, idx.v, base, 4)};
  }
  static I32x16 strided(const std::int32_t* p, int s) {
    alignas(64) std::int32_t t[16];
    for (int i = 0; i < 16; ++i) t[i] = p[i * s];
    return loada(t);
  }
  static I32x16 iota(std::int32_t s = 0) {
    alignas(64) std::int32_t t[16];
    for (int i = 0; i < 16; ++i) t[i] = s + i;
    return loada(t);
  }

  std::int32_t operator[](int i) const {
    alignas(64) std::int32_t t[16];
    _mm512_store_si512(t, v);
    return t[i];
  }
  std::array<std::int32_t, 16> to_array() const {
    alignas(64) std::int32_t t[16];
    _mm512_store_si512(t, v);
    std::array<std::int32_t, 16> a;
    for (int i = 0; i < 16; ++i) a[i] = t[i];
    return a;
  }

  friend I32x16 operator+(I32x16 a, I32x16 b) { return I32x16{_mm512_add_epi32(a.v, b.v)}; }
  friend I32x16 operator-(I32x16 a, I32x16 b) { return I32x16{_mm512_sub_epi32(a.v, b.v)}; }
  friend I32x16 operator*(I32x16 a, I32x16 b) { return I32x16{_mm512_mullo_epi32(a.v, b.v)}; }
  friend I32x16 operator>>(I32x16 a, int s) { return I32x16{_mm512_srai_epi32(a.v, s)}; }
  I32x16& operator+=(I32x16 o) {
    v = _mm512_add_epi32(v, o.v);
    return *this;
  }

  friend MaskK16 operator==(I32x16 a, I32x16 b) {
    return MaskK16{_mm512_cmpeq_epi32_mask(a.v, b.v)};
  }
  friend MaskK16 operator<(I32x16 a, I32x16 b) {
    return MaskK16{_mm512_cmplt_epi32_mask(a.v, b.v)};
  }
  friend MaskK16 operator>(I32x16 a, I32x16 b) { return b < a; }
  friend MaskK16 operator!=(I32x16 a, I32x16 b) { return !(a == b); }
};

inline void storeu(std::int32_t* p, I32x16 a) { _mm512_storeu_si512(p, a.v); }
inline I32x16 select(MaskK16 m, I32x16 a, I32x16 b) {
  return I32x16{_mm512_mask_blend_epi32(m.m, b.v, a.v)};
}
inline I32x16 min(I32x16 a, I32x16 b) { return I32x16{_mm512_min_epi32(a.v, b.v)}; }
inline I32x16 max(I32x16 a, I32x16 b) { return I32x16{_mm512_max_epi32(a.v, b.v)}; }
inline void store_strided(std::int32_t* p, int s, I32x16 a) {
  const auto t = a.to_array();
  for (int i = 0; i < 16; ++i) p[i * s] = t[i];
}
inline void scatter_serial(std::int32_t* base, I32x16 idx, I32x16 a) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  for (int i = 0; i < 16; ++i) base[ix[i]] = t[i];
}
inline void scatter_add_serial(std::int32_t* base, I32x16 idx, I32x16 a) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  for (int i = 0; i < 16; ++i) base[ix[i]] += t[i];
}
inline void scatter_add_hw(std::int32_t* base, I32x16 idx, I32x16 a) {
  const I32x16 cur = I32x16::gather(base, idx);
  _mm512_i32scatter_epi32(base, idx.v, (cur + a).v, 4);
}
inline void scatter_add_serial_masked(std::int32_t* base, I32x16 idx, I32x16 a, MaskK16 m) {
  const auto t = a.to_array();
  const auto ix = idx.to_array();
  for (int i = 0; i < 16; ++i)
    if ((m.m >> i) & 1) base[ix[i]] += t[i];
}
inline std::int32_t hsum(I32x16 a) { return _mm512_reduce_add_epi32(a.v); }
inline std::int32_t hmin(I32x16 a) { return _mm512_reduce_min_epi32(a.v); }
inline std::int32_t hmax(I32x16 a) { return _mm512_reduce_max_epi32(a.v); }

// ---- F32x16 ----------------------------------------------------------------

/// 16 x float in a 512-bit register — the Phi's SP vector width.
struct F32x16 {
  using value_type = float;
  using mask_type = MaskK16;
  using index_type = I32x16;
  static constexpr int width = 16;
  __m512 v;

  F32x16() : v(_mm512_setzero_ps()) {}
  F32x16(float x) : v(_mm512_set1_ps(x)) {}  // NOLINT broadcast
  explicit F32x16(__m512 r) : v(r) {}

  static F32x16 loadu(const float* p) { return F32x16{_mm512_loadu_ps(p)}; }
  static F32x16 loada(const float* p) { return F32x16{_mm512_load_ps(p)}; }
  static F32x16 gather(const float* base, I32x16 idx) {
    return F32x16{_mm512_i32gather_ps(idx.v, base, 4)};
  }
  static F32x16 gather_masked(const float* base, I32x16 idx, MaskK16 m, F32x16 fb) {
    return F32x16{_mm512_mask_i32gather_ps(fb.v, m.m, idx.v, base, 4)};
  }
  static F32x16 strided(const float* p, int s) {
    alignas(64) float t[16];
    for (int i = 0; i < 16; ++i) t[i] = p[i * s];
    return loada(t);
  }
  static F32x16 iota(float s = 0.f) {
    alignas(64) float t[16];
    for (int i = 0; i < 16; ++i) t[i] = s + static_cast<float>(i);
    return loada(t);
  }

  float operator[](int i) const {
    alignas(64) float t[16];
    _mm512_store_ps(t, v);
    return t[i];
  }
  std::array<float, 16> to_array() const {
    alignas(64) float t[16];
    _mm512_store_ps(t, v);
    std::array<float, 16> a;
    for (int i = 0; i < 16; ++i) a[i] = t[i];
    return a;
  }

  F32x16& operator+=(F32x16 o) {
    v = _mm512_add_ps(v, o.v);
    return *this;
  }
  F32x16& operator-=(F32x16 o) {
    v = _mm512_sub_ps(v, o.v);
    return *this;
  }
  F32x16& operator*=(F32x16 o) {
    v = _mm512_mul_ps(v, o.v);
    return *this;
  }
  F32x16& operator/=(F32x16 o) {
    v = _mm512_div_ps(v, o.v);
    return *this;
  }

  friend F32x16 operator+(F32x16 a, F32x16 b) { return F32x16{_mm512_add_ps(a.v, b.v)}; }
  friend F32x16 operator-(F32x16 a, F32x16 b) { return F32x16{_mm512_sub_ps(a.v, b.v)}; }
  friend F32x16 operator*(F32x16 a, F32x16 b) { return F32x16{_mm512_mul_ps(a.v, b.v)}; }
  friend F32x16 operator/(F32x16 a, F32x16 b) { return F32x16{_mm512_div_ps(a.v, b.v)}; }
  friend F32x16 operator-(F32x16 a) { return F32x16{_mm512_sub_ps(_mm512_setzero_ps(), a.v)}; }

  friend MaskK16 operator<(F32x16 a, F32x16 b) {
    return MaskK16{_mm512_cmp_ps_mask(a.v, b.v, _CMP_LT_OQ)};
  }
  friend MaskK16 operator<=(F32x16 a, F32x16 b) {
    return MaskK16{_mm512_cmp_ps_mask(a.v, b.v, _CMP_LE_OQ)};
  }
  friend MaskK16 operator>(F32x16 a, F32x16 b) {
    return MaskK16{_mm512_cmp_ps_mask(a.v, b.v, _CMP_GT_OQ)};
  }
  friend MaskK16 operator>=(F32x16 a, F32x16 b) {
    return MaskK16{_mm512_cmp_ps_mask(a.v, b.v, _CMP_GE_OQ)};
  }
  friend MaskK16 operator==(F32x16 a, F32x16 b) {
    return MaskK16{_mm512_cmp_ps_mask(a.v, b.v, _CMP_EQ_OQ)};
  }
  friend MaskK16 operator!=(F32x16 a, F32x16 b) {
    return MaskK16{_mm512_cmp_ps_mask(a.v, b.v, _CMP_NEQ_UQ)};
  }
};

inline void storeu(float* p, F32x16 a) { _mm512_storeu_ps(p, a.v); }
inline void storea(float* p, F32x16 a) { _mm512_store_ps(p, a.v); }
inline void store_strided(float* p, int s, F32x16 a) {
  alignas(64) float t[16];
  _mm512_store_ps(t, a.v);
  for (int i = 0; i < 16; ++i) p[i * s] = t[i];
}
inline void scatter_serial(float* base, I32x16 idx, F32x16 a) {
  alignas(64) float t[16];
  alignas(64) std::int32_t ix[16];
  _mm512_store_ps(t, a.v);
  _mm512_store_si512(ix, idx.v);
  for (int i = 0; i < 16; ++i) base[ix[i]] = t[i];
}
inline void scatter_add_serial(float* base, I32x16 idx, F32x16 a) {
  alignas(64) float t[16];
  alignas(64) std::int32_t ix[16];
  _mm512_store_ps(t, a.v);
  _mm512_store_si512(ix, idx.v);
  for (int i = 0; i < 16; ++i) base[ix[i]] += t[i];
}
/// Real hardware scatter-add. Lane indices MUST be unique.
inline void scatter_add_hw(float* base, I32x16 idx, F32x16 a) {
  F32x16 cur = F32x16::gather(base, idx);
  cur += a;
  _mm512_i32scatter_ps(base, idx.v, cur.v, 4);
}
inline void scatter_add_serial_masked(float* base, I32x16 idx, F32x16 a, MaskK16 m) {
  alignas(64) float t[16];
  alignas(64) std::int32_t ix[16];
  _mm512_store_ps(t, a.v);
  _mm512_store_si512(ix, idx.v);
  for (int i = 0; i < 16; ++i)
    if ((m.m >> i) & 1) base[ix[i]] += t[i];
}

inline F32x16 select(MaskK16 m, F32x16 a, F32x16 b) {
  return F32x16{_mm512_mask_blend_ps(m.m, b.v, a.v)};
}
inline F32x16 min(F32x16 a, F32x16 b) { return F32x16{_mm512_min_ps(a.v, b.v)}; }
inline F32x16 max(F32x16 a, F32x16 b) { return F32x16{_mm512_max_ps(a.v, b.v)}; }
inline F32x16 abs(F32x16 a) { return F32x16{_mm512_abs_ps(a.v)}; }
inline F32x16 sqrt(F32x16 a) { return F32x16{_mm512_sqrt_ps(a.v)}; }
inline F32x16 fma(F32x16 a, F32x16 b, F32x16 c) { return F32x16{_mm512_fmadd_ps(a.v, b.v, c.v)}; }
inline float hsum(F32x16 a) { return _mm512_reduce_add_ps(a.v); }
inline float hmin(F32x16 a) { return _mm512_reduce_min_ps(a.v); }
inline float hmax(F32x16 a) { return _mm512_reduce_max_ps(a.v); }

// ---- mask conversions -------------------------------------------------------

/// int32 (256-bit, AVX2-style mask) comparison -> F64x8 k-mask.
inline MaskK8 mask_to_f64x8(MaskI32x8 m) {
  return MaskK8{static_cast<__mmask8>(
      _mm256_movemask_ps(_mm256_castsi256_ps(m.m)))};
}
/// I32x16 k-mask -> F32x16 k-mask: identical representation.
inline MaskK16 mask_to_f32x16(MaskK16 m) { return m; }

/// Tail mask with the first n of 8 lanes active.
inline MaskK8 tail_mask_k8(int n) { return MaskK8{static_cast<__mmask8>((1u << n) - 1u)}; }
/// Tail mask with the first n of 16 lanes active.
inline MaskK16 tail_mask_k16(int n) { return MaskK16{static_cast<__mmask16>((1u << n) - 1u)}; }

}  // namespace opv::simd

#endif  // __AVX512F__ && __AVX2__
